//! Calibration constants for the analytic resource/timing models.
//!
//! ## Provenance
//!
//! Absolute gate counts require Vivado synthesis, which this reproduction
//! replaces per the substitution rule (DESIGN.md §1). The constants below
//! were fitted to the paper's published Kintex-7 (`xc7k160tfbg484-2`)
//! numbers:
//!
//! * one Dynamatic LSQ of depth 16 costs ≈ 17 k LUTs — back-solved from
//!   Table I: `polyn_mult` under \[15\] uses one LSQ plus a ~3 k-LUT datapath
//!   (20 086 total), and `2mm`'s two ambiguous arrays double the LSQ while
//!   keeping a ~5 k datapath (39 330 total);
//! * the premature queue + arbiter at `depth_q = 16` costs ≈ 4–6 k LUTs
//!   (PreVV16 totals of 10–15 k minus the same datapaths), growing roughly
//!   linearly in `depth_q` (PreVV64 totals);
//! * flip-flop counts follow the storage widths: 32-bit data + ~10-bit
//!   addresses + control per queue entry;
//! * clock periods: paper Table II reports 7.2–9.2 ns under a 4 ns
//!   constraint; the LSQ's associative search adds delay growing with
//!   depth, PreVV's sequential walk does not.
//!
//! The model's purpose is *relative* fidelity — which design wins and by
//! roughly what factor — not absolute gate counts.

/// Datapath word width (bits).
pub const WORD_BITS: u64 = 32;
/// Address width (bits) — 1 K-word memories.
pub const ADDR_BITS: u64 = 10;

// --- Datapath component costs (LUTs, FFs, muxes) -------------------------

/// Simple ALU (add/sub/compare/logic), one per unit.
pub const ALU_SIMPLE: (u64, u64, u64) = (WORD_BITS + 8, WORD_BITS + 4, 2);
/// LUT-fabric multiplier (DSPs excluded, matching the paper's methodology).
pub const ALU_MUL: (u64, u64, u64) = (96, 4 * WORD_BITS, 4);
/// Divider.
pub const ALU_DIV: (u64, u64, u64) = (620, 8 * WORD_BITS, 8);
/// Opaque-function unit (hash network).
pub const ALU_UNARY: (u64, u64, u64) = (72, 2 * WORD_BITS, 2);
/// Per fork output port.
pub const FORK_PORT: (u64, u64, u64) = (3, 2, 1);
/// Elastic buffer (slack FIFO slot pair).
pub const BUFFER: (u64, u64, u64) = (12, 2 * (WORD_BITS + 2), 2);
/// Branch (guard steering).
pub const BRANCH: (u64, u64, u64) = (WORD_BITS / 2, 4, 2);
/// Constant generator.
pub const CONSTANT: (u64, u64, u64) = (4, 2, 0);
/// Merge/mux/join routing element.
pub const ROUTING: (u64, u64, u64) = (WORD_BITS / 2, 6, 2);
/// Per iteration-source output stream (loop control ring).
pub const SOURCE_STREAM: (u64, u64, u64) = (28, 20, 2);
/// Per memory access port (address/data handshake plumbing).
pub const MEM_PORT: (u64, u64, u64) = (30, 24, 3);

// --- LSQ cost model (per queue instance) ----------------------------------

/// Fixed control overhead of one LSQ instance.
pub const LSQ_BASE_LUTS: u64 = 1_400;
/// Quadratic CAM / dependency-matrix term: each load entry compares against
/// each store entry (LUTs per entry-pair).
pub const LSQ_CAM_LUTS_PER_PAIR: u64 = 55;
/// Linear per-entry term (storage muxing, priority encode), per entry of
/// either queue.
pub const LSQ_ENTRY_LUTS: u64 = 64;
/// FFs per entry (address + data + state).
pub const LSQ_ENTRY_FFS: u64 = WORD_BITS + ADDR_BITS + 12;
/// Pipeline registers inside the CAM/dependency matrix (per entry pair).
pub const LSQ_CAM_FFS_PER_PAIR: u64 = 8;
/// Fixed FFs per instance.
pub const LSQ_BASE_FFS: u64 = 420;
/// Muxes per entry.
pub const LSQ_ENTRY_MUXES: u64 = 6;
/// Group-allocator cost per memory port (\[15\]'s allocation network).
pub const LSQ_ALLOC_LUTS_PER_PORT: u64 = 120;
/// Fast-token-delivery network cost per memory port (\[8\]).
pub const FAST_TOKEN_LUTS_PER_PORT: u64 = 260;
/// Fast-token-delivery FFs per port.
pub const FAST_TOKEN_FFS_PER_PORT: u64 = 90;

// --- PreVV cost model ------------------------------------------------------

/// Premature queue: FFs per entry. The Eq. 1 record
/// `{iter, index, value, op}` is held in LUT-RAM (priced in
/// [`PQ_ENTRY_LUTS`]); only the valid/fake/committed flags and the
/// head-window compare registers need dedicated flip-flops, which is why
/// the paper's PreVV64 FF counts sit barely above PreVV16's.
pub const PQ_ENTRY_FFS: u64 = 30;
/// Premature queue LUTs per entry (record muxing — no CAM, hence the
/// savings).
pub const PQ_ENTRY_LUTS: u64 = 53;
/// Premature queue fixed LUTs (head/tail pointers, full/empty logic).
pub const PQ_BASE_LUTS: u64 = 300;
/// Arbiter fixed cost per ambiguous pair (comparator, LMerge/SMerge,
/// squash mux, order ROM — the paper instantiates PreVV per pair, Fig. 3).
pub const ARB_BASE_LUTS: u64 = 2_200;
/// Arbiter fixed FFs per pair.
pub const ARB_BASE_FFS: u64 = 240;
/// Arbiter LUTs per validated port (merge tree inputs).
pub const ARB_LUTS_PER_VALIDATED_PORT: u64 = 140;
/// Arbiter walk-pointer muxing per queue entry.
pub const ARB_LUTS_PER_ENTRY: u64 = 20;
/// PreVV muxes per queue entry.
pub const PQ_ENTRY_MUXES: u64 = 2;

// --- Timing model (ns) -----------------------------------------------------

/// Baseline achieved clock period of a plain dataflow pipeline on the
/// paper's Kintex-7 under a 4 ns constraint.
pub const CP_BASE_NS: f64 = 6.55;
/// Additional delay when the datapath contains LUT-fabric multipliers.
pub const CP_MUL_NS: f64 = 0.62;
/// LSQ associative search: delay per log2(depth) level of the wide
/// priority/match network.
pub const CP_LSQ_PER_LOG_DEPTH_NS: f64 = 0.38;
/// LSQ delay per memory port on the allocation/search fan-in.
pub const CP_LSQ_PER_PORT_NS: f64 = 0.035;
/// PreVV's sequential walk adds only pointer-mux delay per log2(depth).
pub const CP_PREVV_PER_LOG_DEPTH_NS: f64 = 0.08;
/// Extra CP of the slow \[15\] allocation network per loop level.
pub const CP_ALLOC_PER_LEVEL_NS: f64 = 0.12;
