//! Property tests of the analytic area/timing model: the qualitative
//! relationships the paper's argument rests on must hold for *all*
//! configurations, not just the calibrated points.

use proptest::prelude::*;

use prevv_area::{
    clock_period_ns, controller_cost, lsq_instance_cost, prevv_instance_cost, ControllerKind,
};
use prevv_ir::synthesize;
use prevv_kernels::{extra, paper};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// LSQ cost grows superlinearly in depth (the CAM term), PreVV cost
    /// linearly; both are monotone.
    #[test]
    fn queue_costs_are_monotone_in_depth(d1 in 2usize..128, d2 in 2usize..128) {
        prop_assume!(d1 < d2);
        let l1 = lsq_instance_cost(d1);
        let l2 = lsq_instance_cost(d2);
        prop_assert!(l2.luts > l1.luts);
        prop_assert!(l2.ffs > l1.ffs);
        let p1 = prevv_instance_cost(d1, 2, 4);
        let p2 = prevv_instance_cost(d2, 2, 4);
        prop_assert!(p2.luts > p1.luts);
        // Superlinearity of the CAM: marginal LUTs per entry grow with depth.
        let lsq_marginal = (l2.luts - l1.luts) as f64 / (d2 - d1) as f64;
        let lsq_marginal_small = (lsq_instance_cost(d1 + 1).luts - l1.luts) as f64;
        prop_assert!(lsq_marginal >= lsq_marginal_small * 0.99,
            "CAM cost must not flatten: {lsq_marginal} vs {lsq_marginal_small}");
    }

    /// At equal depth, PreVV's per-pair arbiter must stay cheaper than an
    /// LSQ in the paper's regime (depth >= 16, a handful of pairs). Below
    /// depth ~12 the LSQ's quadratic CAM has not kicked in yet and PreVV's
    /// fixed arbiter cost can lose — a real property of the architecture
    /// that the depth-16/64 operating points sidestep.
    #[test]
    fn prevv_is_cheaper_than_lsq_at_equal_depth(depth in 16usize..96, pairs in 1usize..5) {
        let lsq = lsq_instance_cost(depth);
        let prevv = prevv_instance_cost(depth, pairs, 2 * pairs);
        prop_assert!(prevv.luts < lsq.luts,
            "PreVV ({}) must beat the LSQ ({}) at depth {depth}, {pairs} pairs",
            prevv.luts, lsq.luts);
    }

    /// Clock period ordering: PreVV < fast LSQ <= Dynamatic, for any depth,
    /// on any paper kernel.
    #[test]
    fn clock_period_ordering_holds(depth in 4usize..128, kernel in 0usize..5) {
        let spec = &paper::all_default()[kernel];
        let synth = synthesize(spec).expect("synthesizes");
        let prevv = clock_period_ns(&synth, ControllerKind::Prevv { depth, pair_reduction: true });
        let fast = clock_period_ns(&synth, ControllerKind::FastLsq { depth });
        let dynamatic = clock_period_ns(&synth, ControllerKind::Dynamatic { depth });
        prop_assert!(prevv < fast, "PreVV CP {prevv} must beat fast LSQ {fast}");
        prop_assert!(fast <= dynamatic, "fast allocation cannot be slower than [15]");
    }

    /// The naive per-pair replication is never cheaper than the shared
    /// design (Eq. 11's point).
    #[test]
    fn naive_replication_never_wins(width in 1usize..6) {
        let spec = extra::overlapped_pairs(8, width);
        let synth = synthesize(&spec).expect("synthesizes");
        let shared = controller_cost(&synth, ControllerKind::Prevv { depth: 16, pair_reduction: true });
        let naive = controller_cost(&synth, ControllerKind::NaivePrevvPerPair { depth: 16 });
        prop_assert!(naive.luts > shared.luts);
        prop_assert!(naive.ffs >= shared.ffs);
    }
}
