//! Additional kernels beyond the paper's five: the motivating examples of
//! Fig. 2, a histogram (the canonical runtime-index hazard), and the §V-C
//! guarded-update shape used by the deadlock experiment.

use prevv_dataflow::components::{BinOp, LoopLevel};
use prevv_dataflow::Value;
use prevv_ir::{ArrayDecl, ArrayId, Expr, KernelSpec, OpaqueFn, Stmt};

/// Paper Fig. 2(a): sequential-update RAW —
/// `a[b[i]] += A; b[i] += B`.
pub fn fig2a(n: i64, b_init: Vec<Value>) -> KernelSpec {
    assert_eq!(b_init.len(), n as usize, "b needs one entry per iteration");
    let a = ArrayId(0);
    let b = ArrayId(1);
    KernelSpec::new(
        "fig2a",
        vec![LoopLevel::upto(n)],
        vec![
            ArrayDecl::zeroed("a", (2 * n) as usize),
            ArrayDecl::with_values("b", b_init),
        ],
        vec![
            Stmt::store(
                a,
                Expr::load(b, Expr::var(0)),
                Expr::load(a, Expr::load(b, Expr::var(0))).add(Expr::lit(5)),
            ),
            Stmt::store(
                b,
                Expr::var(0),
                Expr::load(b, Expr::var(0)).add(Expr::lit(3)),
            ),
        ],
    )
    .expect("fig2a is well-formed")
}

/// Paper Fig. 2(b): function-dependent RAW —
/// `a[b[i] + f(x)] += A; b[i + g(x)] += B` with runtime-opaque `f`, `g`.
pub fn fig2b(n: i64, range: i64) -> KernelSpec {
    let a = ArrayId(0);
    let b = ArrayId(1);
    let f = OpaqueFn::new(0xF00D, range);
    let g = OpaqueFn::new(0xBEEF, range);
    let a_idx = Expr::load(b, Expr::var(0)).add(Expr::var(0).opaque(f));
    let b_idx = Expr::var(0).add(Expr::var(0).opaque(g));
    KernelSpec::new(
        "fig2b",
        vec![LoopLevel::upto(n)],
        vec![
            ArrayDecl::zeroed("a", (2 * range) as usize),
            ArrayDecl::with_values("b", (0..n).map(|i| i % range).collect()),
        ],
        vec![
            Stmt::store(a, a_idx.clone(), Expr::load(a, a_idx).add(Expr::lit(5))),
            Stmt::store(b, b_idx.clone(), Expr::load(b, b_idx).add(Expr::lit(3))),
        ],
    )
    .expect("fig2b is well-formed")
}

/// Histogram: `h[f(i)] += 1`. `bins` controls the RAW hazard rate — the
/// denser the bins, the more often premature loads mis-speculate.
pub fn histogram(n: i64, bins: i64, seed: u64) -> KernelSpec {
    let h = ArrayId(0);
    let idx = Expr::var(0).opaque(OpaqueFn::new(seed, bins));
    KernelSpec::new(
        "histogram",
        vec![LoopLevel::upto(n)],
        vec![ArrayDecl::zeroed("h", bins as usize)],
        vec![Stmt::store(
            h,
            idx.clone(),
            Expr::load(h, idx).add(Expr::lit(1)),
        )],
    )
    .expect("histogram is well-formed")
}

/// The §V-C guarded-update kernel: `if (i % m == 0) a[c] += 1`. Without
/// fake tokens, PreVV deadlocks on this shape.
pub fn guarded_update(n: i64, every: i64) -> KernelSpec {
    let a = ArrayId(0);
    KernelSpec::new(
        "guarded_update",
        vec![LoopLevel::upto(n)],
        vec![ArrayDecl::zeroed("a", 8)],
        vec![Stmt::guarded(
            a,
            Expr::lit(3),
            Expr::load(a, Expr::lit(3)).add(Expr::lit(1)),
            Expr::bin(
                BinOp::Eq,
                Expr::bin(BinOp::Rem, Expr::var(0), Expr::lit(every)),
                Expr::lit(0),
            ),
        )],
    )
    .expect("guarded_update is well-formed")
}

/// Serial reduction: every iteration read-modify-writes one cell — the
/// worst case for premature execution (100% RAW) and the best case for an
/// LSQ's forwarding. Used to probe the squash-rate extreme.
pub fn serial_reduction(n: i64) -> KernelSpec {
    let s = ArrayId(0);
    KernelSpec::new(
        "serial_reduction",
        vec![LoopLevel::upto(n)],
        vec![ArrayDecl::zeroed("s", 4)],
        vec![Stmt::store(
            s,
            Expr::lit(0),
            Expr::load(s, Expr::lit(0)).add(Expr::var(0)),
        )],
    )
    .expect("serial_reduction is well-formed")
}

/// A chain of `width` ambiguous accumulations into one array — overlapped
/// ambiguous pairs for the §V-B scalability experiment: each extra term
/// adds another load that pairs with the store.
pub fn overlapped_pairs(n: i64, width: usize) -> KernelSpec {
    assert!(width >= 1, "need at least one term");
    let a = ArrayId(0);
    let mut value = Expr::load(a, Expr::var(0));
    for w in 1..width {
        value = value.add(Expr::load(a, Expr::var(0).add(Expr::lit(w as i64))));
    }
    KernelSpec::new(
        format!("overlap_w{width}"),
        vec![LoopLevel::upto(n), LoopLevel::upto(4)],
        vec![ArrayDecl::zeroed("a", (n + width as i64 + 1) as usize)],
        vec![Stmt::store(a, Expr::var(0), value.add(Expr::lit(1)))],
    )
    .expect("overlapped kernel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use prevv_ir::{depend, golden};

    #[test]
    fn fig2b_has_runtime_ambiguity() {
        let d = depend::analyze(&fig2b(16, 8));
        assert!(d.needs_disambiguation());
        assert!(d.pairs.len() >= 3);
    }

    #[test]
    fn histogram_counts_sum_to_n() {
        let spec = histogram(64, 8, 42);
        let g = golden::execute(&spec);
        assert_eq!(g.arrays[0].iter().sum::<i64>(), 64);
    }

    #[test]
    fn guarded_update_counts_taken_iterations() {
        let spec = guarded_update(30, 3);
        let g = golden::execute(&spec);
        assert_eq!(g.arrays[0][3], 10);
        assert_eq!(g.guards_skipped, 20);
    }

    #[test]
    fn overlapped_pairs_scale_with_width() {
        let d1 = depend::analyze(&overlapped_pairs(8, 1));
        let d3 = depend::analyze(&overlapped_pairs(8, 3));
        assert!(d3.pairs.len() > d1.pairs.len());
    }

    #[test]
    fn serial_reduction_sums_the_indices() {
        let g = golden::execute(&serial_reduction(10));
        assert_eq!(g.arrays[0][0], 45);
    }
}
