//! The five evaluation kernels of the paper (§VI-A).
//!
//! All are loop nests with memory dependences in both inner and outer loops,
//! so Dynamatic must instantiate an LSQ (or PreVV) for each. Sizes are
//! parameterized and default to laptop-friendly values that preserve the
//! hazard *rates* of the paper's workloads; the harness reports results for
//! the default sizes.

use prevv_dataflow::components::{Bound, LoopLevel};
use prevv_dataflow::Value;
use prevv_ir::{ArrayDecl, ArrayId, Expr, KernelSpec, Stmt};

use crate::workload;

fn flat(i: Expr, j: Expr, n: i64) -> Expr {
    i.mul(Expr::lit(n)).add(j)
}

/// `2mm`: two chained matrix multiplications `tmp = A·B; D = tmp·C`,
/// accumulated in place — the accumulation loads/stores of `tmp` and `D`
/// are the ambiguous pairs.
///
/// Expressed as one triple nest computing both products (the second reads
/// the first's still-hot output, maximizing inter-iteration dependences).
pub fn mm2(n: i64) -> KernelSpec {
    let a = ArrayId(0);
    let b = ArrayId(1);
    let tmp = ArrayId(2);
    let d = ArrayId(3);
    let (i, j, k) = (Expr::var(0), Expr::var(1), Expr::var(2));
    let cells = (n * n) as usize;
    KernelSpec::new(
        "2mm",
        vec![LoopLevel::upto(n), LoopLevel::upto(n), LoopLevel::upto(n)],
        vec![
            ArrayDecl::with_values("A", workload::dense_matrix(n, 7)),
            ArrayDecl::with_values("B", workload::dense_matrix(n, 11)),
            ArrayDecl::zeroed("tmp", cells),
            ArrayDecl::zeroed("D", cells),
        ],
        vec![
            // tmp[i][j] += A[i][k] * B[k][j]
            Stmt::store(
                tmp,
                flat(i.clone(), j.clone(), n),
                Expr::load(tmp, flat(i.clone(), j.clone(), n)).add(
                    Expr::load(a, flat(i.clone(), k.clone(), n))
                        .mul(Expr::load(b, flat(k.clone(), j.clone(), n))),
                ),
            ),
            // D[i][j] += tmp[i][j] (reads the accumulator being written by
            // the statement above — an ambiguous pair across statements).
            Stmt::store(
                d,
                flat(i.clone(), j.clone(), n),
                Expr::load(d, flat(i.clone(), j.clone(), n)).add(Expr::load(tmp, flat(i, j, n))),
            ),
        ],
    )
    .expect("2mm is well-formed")
}

/// `3mm`: three matrix products; like [`mm2`] with one more chained
/// accumulation, increasing the number of ambiguous pairs.
pub fn mm3(n: i64) -> KernelSpec {
    let a = ArrayId(0);
    let b = ArrayId(1);
    let e = ArrayId(2);
    let f = ArrayId(3);
    let g = ArrayId(4);
    let (i, j, k) = (Expr::var(0), Expr::var(1), Expr::var(2));
    let cells = (n * n) as usize;
    KernelSpec::new(
        "3mm",
        vec![LoopLevel::upto(n), LoopLevel::upto(n), LoopLevel::upto(n)],
        vec![
            ArrayDecl::with_values("A", workload::dense_matrix(n, 13)),
            ArrayDecl::with_values("B", workload::dense_matrix(n, 17)),
            ArrayDecl::zeroed("E", cells),
            ArrayDecl::zeroed("F", cells),
            ArrayDecl::zeroed("G", cells),
        ],
        vec![
            Stmt::store(
                e,
                flat(i.clone(), j.clone(), n),
                Expr::load(e, flat(i.clone(), j.clone(), n)).add(
                    Expr::load(a, flat(i.clone(), k.clone(), n))
                        .mul(Expr::load(b, flat(k.clone(), j.clone(), n))),
                ),
            ),
            Stmt::store(
                f,
                flat(i.clone(), j.clone(), n),
                Expr::load(f, flat(i.clone(), j.clone(), n))
                    .add(Expr::load(e, flat(i.clone(), k.clone(), n))),
            ),
            Stmt::store(
                g,
                flat(i.clone(), j.clone(), n),
                Expr::load(g, flat(i.clone(), j.clone(), n)).add(Expr::load(f, flat(i, j, n))),
            ),
        ],
    )
    .expect("3mm is well-formed")
}

/// `polyn_mult`: polynomial multiplication `c[i+j] += a[i] * b[j]` —
/// compute-bound, limited data reuse, every iteration read-modify-writes a
/// coefficient that neighbouring iterations also touch.
pub fn polyn_mult(n: i64) -> KernelSpec {
    let a = ArrayId(0);
    let b = ArrayId(1);
    let c = ArrayId(2);
    let (i, j) = (Expr::var(0), Expr::var(1));
    let cidx = i.clone().add(j.clone());
    KernelSpec::new(
        "polyn_mult",
        vec![LoopLevel::upto(n), LoopLevel::upto(n)],
        vec![
            ArrayDecl::with_values("a", workload::coefficients(n, 3)),
            ArrayDecl::with_values("b", workload::coefficients(n, 5)),
            ArrayDecl::zeroed("c", (2 * n) as usize),
        ],
        vec![Stmt::store(
            c,
            cidx.clone(),
            Expr::load(c, cidx).add(Expr::load(a, i).mul(Expr::load(b, j))),
        )],
    )
    .expect("polyn_mult is well-formed")
}

/// `gaussian`: Gaussian elimination update step
/// `A[j][k] -= A[j][i] * A[i][k]` over a triangular nest — in-place updates
/// where the pivot row read and the update writes alias across iterations.
pub fn gaussian(n: i64) -> KernelSpec {
    let a = ArrayId(0);
    let (i, j, k) = (Expr::var(0), Expr::var(1), Expr::var(2));
    KernelSpec::new(
        "gaussian",
        vec![
            LoopLevel::upto(n - 1),
            LoopLevel::new(Bound::OuterPlus(0, 1), Bound::Const(n)),
            LoopLevel::new(Bound::OuterPlus(0, 0), Bound::Const(n)),
        ],
        vec![ArrayDecl::with_values(
            "A",
            workload::diagonally_dominant(n, 23),
        )],
        vec![Stmt::store(
            a,
            flat(j.clone(), k.clone(), n),
            Expr::load(a, flat(j.clone(), k.clone(), n))
                .sub(Expr::load(a, flat(j, i.clone(), n)).mul(Expr::load(a, flat(i, k, n)))),
        )],
    )
    .expect("gaussian is well-formed")
}

/// `triangular`: triangular matrix product `B[i][j] += L[i][k] * B[k][j]`
/// for `k <= i` — in-place update of `B` while it is being consumed, the
/// classic forward-substitution hazard.
pub fn triangular(n: i64) -> KernelSpec {
    let l = ArrayId(0);
    let b = ArrayId(1);
    let (i, j, k) = (Expr::var(0), Expr::var(1), Expr::var(2));
    KernelSpec::new(
        "triangular",
        vec![
            LoopLevel::upto(n),
            LoopLevel::upto(n),
            LoopLevel::new(Bound::Const(0), Bound::OuterPlus(0, 1)),
        ],
        vec![
            ArrayDecl::with_values("L", workload::dense_matrix(n, 29)),
            ArrayDecl::with_values("B", workload::dense_matrix(n, 31)),
        ],
        vec![Stmt::store(
            b,
            flat(i.clone(), j.clone(), n),
            Expr::load(b, flat(i.clone(), j.clone(), n))
                .add(Expr::load(l, flat(i, k.clone(), n)).mul(Expr::load(b, flat(k, j, n)))),
        )],
    )
    .expect("triangular is well-formed")
}

/// Default problem sizes used by the experiment harness (scaled from the
/// paper's to laptop-simulation scale; hazard structure is preserved).
pub mod default_sizes {
    /// Matrix dimension for `2mm`/`3mm`.
    pub const MM: i64 = 8;
    /// Polynomial degree for `polyn_mult`.
    pub const POLY: i64 = 16;
    /// Matrix dimension for `gaussian`.
    pub const GAUSSIAN: i64 = 8;
    /// Matrix dimension for `triangular`.
    pub const TRIANGULAR: i64 = 8;
}

/// All five paper kernels at their default sizes, in the paper's Table I
/// row order.
pub fn all_default() -> Vec<KernelSpec> {
    vec![
        polyn_mult(default_sizes::POLY),
        mm2(default_sizes::MM),
        mm3(default_sizes::MM),
        gaussian(default_sizes::GAUSSIAN),
        triangular(default_sizes::TRIANGULAR),
    ]
}

/// Golden checksum of a kernel's output arrays — convenient for quick
/// regression assertions in benches.
pub fn golden_checksum(spec: &KernelSpec) -> Value {
    let g = prevv_ir::golden::execute(spec);
    g.arrays
        .iter()
        .flatten()
        .fold(0i64, |acc, &v| acc.wrapping_mul(31).wrapping_add(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prevv_ir::{depend, golden};

    #[test]
    fn all_kernels_validate_and_need_disambiguation() {
        for spec in all_default() {
            assert!(spec.validate().is_ok(), "{} invalid", spec.name);
            let d = depend::analyze(&spec);
            assert!(
                d.needs_disambiguation(),
                "paper kernel {} must have ambiguous pairs",
                spec.name
            );
        }
    }

    #[test]
    fn mm2_matches_reference_matmul() {
        let n = 4;
        let spec = mm2(n);
        let g = golden::execute(&spec);
        let a = workload::dense_matrix(n, 7);
        let b = workload::dense_matrix(n, 11);
        let mut tmp = vec![0i64; (n * n) as usize];
        let mut d = vec![0i64; (n * n) as usize];
        // The kernel accumulates tmp and D inside the same k-loop, so D
        // accumulates partial prefixes of tmp — reproduce exactly.
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    tmp[(i * n + j) as usize] += a[(i * n + k) as usize] * b[(k * n + j) as usize];
                    d[(i * n + j) as usize] += tmp[(i * n + j) as usize];
                }
            }
        }
        assert_eq!(g.arrays[2], tmp);
        assert_eq!(g.arrays[3], d);
    }

    #[test]
    fn polyn_mult_matches_reference_convolution() {
        let n = 6;
        let spec = polyn_mult(n);
        let g = golden::execute(&spec);
        let a = workload::coefficients(n, 3);
        let b = workload::coefficients(n, 5);
        let mut c = vec![0i64; (2 * n) as usize];
        for i in 0..n as usize {
            for j in 0..n as usize {
                c[i + j] += a[i] * b[j];
            }
        }
        assert_eq!(g.arrays[2], c);
    }

    #[test]
    fn gaussian_reduces_below_pivot() {
        let n = 5;
        let spec = gaussian(n);
        let g = golden::execute(&spec);
        // After elimination with exact integer arithmetic the matrix is
        // changed; sanity: deterministic and different from the input.
        let before = workload::diagonally_dominant(n, 23);
        assert_ne!(g.arrays[0], before);
        assert_eq!(g, golden::execute(&spec), "deterministic");
    }

    #[test]
    fn triangular_iteration_space_is_triangular() {
        let spec = triangular(6);
        // sum over i of n*(i+1)
        let expected: usize = (0..6).map(|i| 6 * (i + 1)).sum();
        assert_eq!(spec.iteration_count(), expected);
    }

    #[test]
    fn checksums_are_stable() {
        let c1 = golden_checksum(&polyn_mult(8));
        let c2 = golden_checksum(&polyn_mult(8));
        assert_eq!(c1, c2);
        assert_ne!(c1, golden_checksum(&polyn_mult(9)));
    }
}
