//! Deterministic workload generators.
//!
//! All data is generated from explicit seeds via a splitmix64 stream so
//! every experiment is exactly reproducible — the moral equivalent of the
//! fixed input sets the paper's ModelSim testbenches use.

use prevv_dataflow::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG for workload generation.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// An `n × n` matrix of small values (kept small so exact integer
/// arithmetic cannot overflow across chained multiplications).
pub fn dense_matrix(n: i64, seed: u64) -> Vec<Value> {
    let mut r = rng(seed);
    (0..n * n).map(|_| r.gen_range(-4..=4)).collect()
}

/// `n` polynomial coefficients.
pub fn coefficients(n: i64, seed: u64) -> Vec<Value> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(-8..=8)).collect()
}

/// A diagonally dominant `n × n` matrix (keeps Gaussian elimination
/// well-behaved in integer arithmetic).
pub fn diagonally_dominant(n: i64, seed: u64) -> Vec<Value> {
    let mut r = rng(seed);
    let mut m: Vec<Value> = (0..n * n).map(|_| r.gen_range(-2..=2)).collect();
    for i in 0..n {
        m[(i * n + i) as usize] = 8 + r.gen_range(0i64..4);
    }
    m
}

/// Index stream with a controlled collision probability: each element is
/// drawn from `0..bins`, so smaller `bins` means denser RAW hazards.
pub fn index_stream(n: usize, bins: Value, seed: u64) -> Vec<Value> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(0..bins)).collect()
}

/// An adversarial index stream: pairs of equal indices `d` apart, forcing a
/// RAW hazard with reuse distance `d` at every other element.
pub fn adversarial_stream(n: usize, bins: Value, reuse_distance: usize, seed: u64) -> Vec<Value> {
    let mut v = index_stream(n, bins, seed);
    let mut i = reuse_distance;
    while i < n {
        v[i] = v[i - reuse_distance];
        i += reuse_distance.max(1) * 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(dense_matrix(4, 9), dense_matrix(4, 9));
        assert_ne!(dense_matrix(4, 9), dense_matrix(4, 10));
        assert_eq!(index_stream(16, 8, 1), index_stream(16, 8, 1));
    }

    #[test]
    fn diagonal_dominance_holds() {
        let n = 6;
        let m = diagonally_dominant(n, 3);
        for i in 0..n {
            let diag = m[(i * n + i) as usize].abs();
            let off: i64 = (0..n)
                .filter(|&j| j != i)
                .map(|j| m[(i * n + j) as usize].abs())
                .sum();
            assert!(diag >= off / 2, "row {i} not dominant enough");
        }
    }

    #[test]
    fn adversarial_stream_repeats_at_distance() {
        let v = adversarial_stream(32, 64, 3, 5);
        assert_eq!(v[3], v[0]);
        assert_eq!(v[9], v[6]);
    }

    #[test]
    fn index_stream_respects_bins() {
        let v = index_stream(256, 7, 2);
        assert!(v.iter().all(|&x| (0..7).contains(&x)));
    }
}
