//! Seeded adversarial kernel generator with shrinking.
//!
//! Turns the paper's five hand-written kernels into an unbounded scenario
//! family (ROADMAP item 4): every [`generate`] call derives a valid
//! [`KernelSpec`] — guards, indirect and opaque-hashed addressing,
//! triangular bounds, multi-level nests, `depth_q` directives — entirely
//! from a `u64` seed, so any failure reproduces from two numbers.
//!
//! Design constraints baked into the generator:
//!
//! - **Parser-closed.** Only operators the `.pvk` parser understands are
//!   emitted (`+ - * / % min max == != < <= > >=` and opaque hashes), so
//!   `pretty::render` → `parse` round-trips by construction. Array names
//!   avoid the loop-variable names and the `h<seed>_<modulus>` opaque
//!   spelling.
//! - **Lint-clean addressing by default.** Affine indices are interval
//!   checked against the array length; indirect sources are initialised
//!   with values inside every array, and opaque moduli equal the target
//!   array length. PV001/PV500 errors therefore indicate a generator or
//!   analyzer bug, which is exactly what the differential oracle asserts.
//! - **Division is total.** `BinOp::Div`/`Rem` by zero yield 0 in both the
//!   golden interpreter and the ALUs, so value expressions may divide.
//!
//! [`shrink`] produces one-step-smaller candidate specs; [`shrink_to_fixpoint`]
//! drives it greedily against a caller-supplied failure predicate, which is
//! how `runkernel --fuzz` turns a 3-level nest into a pinnable fixture.

use prevv_dataflow::components::{Bound, LoopLevel};
use prevv_dataflow::Value;
use prevv_ir::{ArrayDecl, ArrayId, Expr, KernelSpec, OpaqueFn, Span, Stmt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape limits for [`generate`].
///
/// The defaults keep kernels small enough that the model checker and both
/// schedulers finish in milliseconds while still covering every structural
/// feature the synthesizer supports.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum loop-nest depth (1..=this).
    pub max_levels: usize,
    /// Maximum statements per body (1..=this).
    pub max_stmts: usize,
    /// Maximum declared arrays (2..=this).
    pub max_arrays: usize,
    /// Maximum per-level trip extent.
    pub max_extent: Value,
    /// Hard cap on the total iteration count; levels are re-rolled until
    /// the product lands in `1..=this`.
    pub max_iterations: usize,
    /// Allow `if (...)` guards on statements.
    pub allow_guards: bool,
    /// Force every statement to carry a guard (used by the wedged-kernel
    /// tests, which starve guards of fake tokens).
    pub require_guard: bool,
    /// Allow data-dependent `a[b[i]]` addressing.
    pub allow_indirect: bool,
    /// Allow opaque-hash `a[h_s_m(i)]` addressing.
    pub allow_opaque: bool,
    /// Allow triangular (`for j = i..n`) inner bounds.
    pub allow_triangular: bool,
    /// Allow an embedded `depth_q = N;` directive.
    pub allow_depth_hint: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_levels: 3,
            max_stmts: 3,
            max_arrays: 3,
            max_extent: 6,
            max_iterations: 512,
            allow_guards: true,
            require_guard: false,
            allow_indirect: true,
            allow_opaque: true,
            allow_triangular: true,
            allow_depth_hint: true,
        }
    }
}

impl GenConfig {
    /// Profile for the pinned regression corpus: small iteration spaces so
    /// a debug-build replay of 32 kernels x 4 controllers x 2 schedulers
    /// stays fast.
    pub fn corpus() -> Self {
        GenConfig {
            max_iterations: 128,
            ..GenConfig::default()
        }
    }

    /// Profile for throughput benchmarking: bigger, irregular iteration
    /// spaces so the event-driven scheduler's sparse sweep is actually
    /// exercised, without guards (which would add squash noise to timing).
    pub fn bench() -> Self {
        GenConfig {
            max_levels: 2,
            max_extent: 24,
            max_iterations: 4096,
            allow_depth_hint: false,
            ..GenConfig::default()
        }
    }
}

/// Conservative `[min, max]` interval for an affine expression.
#[derive(Debug, Clone, Copy)]
struct Interval {
    lo: Value,
    hi: Value,
}

/// Per-generation context: declared arrays plus per-level bounds.
struct Ctx {
    arrays: Vec<ArrayDecl>,
    /// Inclusive value range of each induction variable.
    var_ranges: Vec<Interval>,
}

/// Generates one valid kernel from a seed. Always succeeds: shapes that
/// fail [`KernelSpec::new`] validation are re-rolled internally.
pub fn generate(seed: u64, config: &GenConfig) -> KernelSpec {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed);
    // A fresh sub-seed per attempt keeps retries from replaying the same
    // rejected shape forever.
    loop {
        if let Some(spec) = try_generate(&mut rng, config, seed) {
            return spec;
        }
    }
}

fn try_generate(rng: &mut StdRng, config: &GenConfig, seed: u64) -> Option<KernelSpec> {
    let levels = gen_levels(rng, config)?;
    let var_ranges = level_ranges(&levels);

    // Array lengths first, then inits bounded by the *minimum* length so
    // any array can serve as an in-range indirect index source.
    let n_arrays = rng.gen_range(2..=config.max_arrays.max(2));
    let mut arrays = Vec::with_capacity(n_arrays);
    let names = ["a", "b", "c", "d"];
    let lens: Vec<usize> = (0..n_arrays).map(|_| rng.gen_range(8..=16usize)).collect();
    let min_len = *lens.iter().min().expect("non-empty") as Value;
    for (i, len) in lens.iter().enumerate() {
        if rng.gen_range(0u32..3) == 0 {
            arrays.push(ArrayDecl::zeroed(names[i], *len));
        } else {
            let vals = (0..*len).map(|_| rng.gen_range(0..min_len)).collect();
            arrays.push(ArrayDecl::with_values(names[i], vals));
        }
    }

    let ctx = Ctx { arrays, var_ranges };

    let n_stmts = rng.gen_range(1..=config.max_stmts.max(1));
    let mut body = Vec::with_capacity(n_stmts);
    for _ in 0..n_stmts {
        body.push(gen_stmt(rng, config, &ctx));
    }

    let spec = KernelSpec::new(format!("fuzz_{seed:#x}"), levels, ctx.arrays, body).ok()?;
    if config.allow_depth_hint && rng.gen_range(0u32..4) == 0 {
        // depth_q must cover one iteration's worth of memory ops or the
        // PreVV backend refuses the kernel outright.
        let floor = spec.mem_ops_per_iter();
        let depth = if rng.gen_range(0u32..2) == 0 { 16 } else { 32 };
        if depth >= floor {
            return Some(spec.with_depth_hint(depth, Span::point(0)));
        }
    }
    Some(spec)
}

/// Rolls a loop nest whose total trip count is in `1..=max_iterations`.
fn gen_levels(rng: &mut StdRng, config: &GenConfig) -> Option<Vec<LoopLevel>> {
    for _ in 0..32 {
        let n = rng.gen_range(1..=config.max_levels.max(1));
        let mut levels = Vec::with_capacity(n);
        for lvl in 0..n {
            let hi = rng.gen_range(2..=config.max_extent.max(2));
            let lo = if lvl > 0 && config.allow_triangular && rng.gen_range(0u32..4) == 0 {
                // Triangular: start at an outer variable (optionally +1).
                Bound::OuterPlus(rng.gen_range(0..lvl), rng.gen_range(0..=1))
            } else {
                Bound::Const(0)
            };
            levels.push(LoopLevel::new(lo, Bound::Const(hi)));
        }
        let count = prevv_dataflow::components::count_iterations(&levels);
        if (1..=config.max_iterations).contains(&count) {
            return Some(levels);
        }
    }
    None
}

/// Inclusive value range of each induction variable, assuming every level
/// runs at least once (guaranteed by the `count >= 1` check above).
fn level_ranges(levels: &[LoopLevel]) -> Vec<Interval> {
    let mut ranges: Vec<Interval> = Vec::with_capacity(levels.len());
    for level in levels {
        let lo = match level.lo {
            Bound::Const(c) => c,
            Bound::OuterPlus(outer, off) => ranges[outer].lo + off,
        };
        let hi = match level.hi {
            Bound::Const(c) => c - 1,
            Bound::OuterPlus(outer, off) => ranges[outer].hi + off - 1,
        };
        ranges.push(Interval { lo, hi: hi.max(lo) });
    }
    ranges
}

fn gen_stmt(rng: &mut StdRng, config: &GenConfig, ctx: &Ctx) -> Stmt {
    let target = ArrayId(rng.gen_range(0..ctx.arrays.len()));
    let index = gen_index(rng, config, ctx, target);
    let value = gen_value(rng, ctx, 2);
    let guarded = config.require_guard || (config.allow_guards && rng.gen_range(0u32..3) == 0);
    if guarded {
        Stmt::guarded(target, index, value, gen_guard(rng, ctx))
    } else {
        Stmt::store(target, index, value)
    }
}

/// An address expression for `target` that the lints cannot prove
/// out-of-bounds: affine-in-interval, indirect through an in-range source
/// array, or opaque-hashed with modulus = target length.
fn gen_index(rng: &mut StdRng, config: &GenConfig, ctx: &Ctx, target: ArrayId) -> Expr {
    let len = ctx.arrays[target.0].len as Value;
    let mut choices = vec![0u32];
    if config.allow_indirect {
        choices.push(1);
    }
    if config.allow_opaque {
        choices.push(2);
    }
    match choices[rng.gen_range(0..choices.len())] {
        0 => gen_affine_in_range(rng, ctx, len),
        1 => {
            // a[min(max(src[affine], 0), len-1)] — src starts with in-range
            // values but earlier stores may overwrite it with anything, so
            // the load is clamped. Still runtime-dependent: no affine lint
            // can prove the address, which is what stresses the arbiter.
            use prevv_dataflow::components::BinOp;
            let src = ArrayId(rng.gen_range(0..ctx.arrays.len()));
            let src_len = ctx.arrays[src.0].len as Value;
            let raw = Expr::load(src, gen_affine_in_range(rng, ctx, src_len));
            Expr::bin(
                BinOp::Min,
                Expr::bin(BinOp::Max, raw, Expr::lit(0)),
                Expr::lit(len - 1),
            )
        }
        _ => {
            let inner_len = ctx.arrays[rng.gen_range(0..ctx.arrays.len())].len as Value;
            let inner = gen_affine_in_range(rng, ctx, inner_len);
            inner.opaque(OpaqueFn::new(rng.gen_range(0..256u64), len))
        }
    }
}

/// An affine expression over induction variables with interval `[0, len)`.
fn gen_affine_in_range(rng: &mut StdRng, ctx: &Ctx, len: Value) -> Expr {
    for _ in 0..16 {
        let (e, iv) = gen_affine(rng, ctx, 2);
        if iv.lo >= 0 && iv.hi < len {
            return e;
        }
    }
    // Fallback: a plain constant is always in range.
    Expr::lit(rng.gen_range(0..len))
}

/// A random affine expression plus its interval.
fn gen_affine(rng: &mut StdRng, ctx: &Ctx, depth: usize) -> (Expr, Interval) {
    if depth == 0 || rng.gen_range(0u32..2) == 0 {
        return match rng.gen_range(0u32..2) {
            0 => {
                let v = rng.gen_range(0..ctx.var_ranges.len());
                (Expr::var(v), ctx.var_ranges[v])
            }
            _ => {
                let c = rng.gen_range(0..8);
                (Expr::lit(c), Interval { lo: c, hi: c })
            }
        };
    }
    let (l, li) = gen_affine(rng, ctx, depth - 1);
    match rng.gen_range(0u32..3) {
        0 => {
            let (r, ri) = gen_affine(rng, ctx, depth - 1);
            (
                l.add(r),
                Interval {
                    lo: li.lo + ri.lo,
                    hi: li.hi + ri.hi,
                },
            )
        }
        1 => {
            let c = rng.gen_range(0..4);
            (
                l.sub(Expr::lit(c)),
                Interval {
                    lo: li.lo - c,
                    hi: li.hi - c,
                },
            )
        }
        _ => {
            let c = rng.gen_range(1..4);
            (
                l.mul(Expr::lit(c)),
                Interval {
                    lo: li.lo * c,
                    hi: li.hi * c,
                },
            )
        }
    }
}

/// A value expression: constants, induction variables, up to a couple of
/// loads, combined with total arithmetic (`Div`/`Rem` by zero yield 0).
fn gen_value(rng: &mut StdRng, ctx: &Ctx, depth: usize) -> Expr {
    if depth == 0 || rng.gen_range(0u32..3) == 0 {
        return match rng.gen_range(0u32..3) {
            0 => Expr::lit(rng.gen_range(-4..=8)),
            1 => Expr::var(rng.gen_range(0..ctx.var_ranges.len())),
            _ => {
                let a = ArrayId(rng.gen_range(0..ctx.arrays.len()));
                let len = ctx.arrays[a.0].len as Value;
                Expr::load(a, gen_affine_in_range(rng, ctx, len))
            }
        };
    }
    use prevv_dataflow::components::BinOp;
    let l = gen_value(rng, ctx, depth - 1);
    let r = gen_value(rng, ctx, depth - 1);
    let op = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::Min,
        BinOp::Max,
    ][rng.gen_range(0..7usize)];
    Expr::bin(op, l, r)
}

/// A compile-time-affine guard (`KernelSpec::new` rejects runtime-dependent
/// guards as `NonAffineGuard`).
fn gen_guard(rng: &mut StdRng, ctx: &Ctx) -> Expr {
    use prevv_dataflow::components::BinOp;
    let v = Expr::var(rng.gen_range(0..ctx.var_ranges.len()));
    match rng.gen_range(0u32..3) {
        0 => {
            // (v % c) == k — the classic sparse-store guard from fig2b.
            let c = rng.gen_range(2..4);
            let k = rng.gen_range(0..c);
            Expr::bin(
                BinOp::Eq,
                Expr::bin(BinOp::Rem, v, Expr::lit(c)),
                Expr::lit(k),
            )
        }
        1 => {
            let cmp =
                [BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge, BinOp::Ne][rng.gen_range(0..5usize)];
            Expr::bin(cmp, v, Expr::lit(rng.gen_range(0..6)))
        }
        _ => {
            let w = Expr::var(rng.gen_range(0..ctx.var_ranges.len()));
            Expr::bin(BinOp::Ne, v, w)
        }
    }
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

/// One-step-smaller candidates for `spec`, each still a valid kernel.
///
/// Ordered roughly by how much they remove: whole statements and loop
/// levels first, then guards, extents, arrays, sub-expressions, and the
/// depth hint last.
pub fn shrink(spec: &KernelSpec) -> Vec<KernelSpec> {
    let mut out = Vec::new();
    let mut push = |candidate: Result<KernelSpec, prevv_ir::KernelError>| {
        if let Ok(k) = candidate {
            out.push(k);
        }
    };

    // Drop one statement (if more than one remains).
    if spec.body.len() > 1 {
        for i in 0..spec.body.len() {
            let mut body = spec.body.clone();
            body.remove(i);
            push(rebuild(
                spec,
                spec.levels.clone(),
                spec.arrays.clone(),
                body,
            ));
        }
    }

    // Drop the innermost loop level, substituting its variable's lower
    // bound for every use so addressing stays in range.
    if spec.levels.len() > 1 {
        let inner = spec.levels.len() - 1;
        let lo = match spec.levels[inner].lo {
            Bound::Const(c) => c,
            // Triangular inner bound: outer's smallest value plus offset.
            Bound::OuterPlus(_, off) => off,
        };
        let levels = spec.levels[..inner].to_vec();
        let body = spec
            .body
            .iter()
            .map(|s| map_stmt(s, &|e| subst_var(e, inner, lo)))
            .collect();
        push(rebuild(spec, levels, spec.arrays.clone(), body));
    }

    // Halve each level's constant extent.
    for (i, level) in spec.levels.iter().enumerate() {
        if let Bound::Const(hi) = level.hi {
            if hi > 2 {
                let mut levels = spec.levels.clone();
                levels[i] = LoopLevel::new(level.lo, Bound::Const(hi / 2 + 1));
                push(rebuild(
                    spec,
                    levels,
                    spec.arrays.clone(),
                    spec.body.clone(),
                ));
            }
        }
    }

    // Replace a triangular lower bound with 0.
    for (i, level) in spec.levels.iter().enumerate() {
        if matches!(level.lo, Bound::OuterPlus(..)) {
            let mut levels = spec.levels.clone();
            levels[i] = LoopLevel::new(Bound::Const(0), level.hi);
            push(rebuild(
                spec,
                levels,
                spec.arrays.clone(),
                spec.body.clone(),
            ));
        }
    }

    // Drop one guard.
    for (i, stmt) in spec.body.iter().enumerate() {
        if stmt.guard.is_some() {
            let mut body = spec.body.clone();
            body[i] = Stmt::store(stmt.array, stmt.index.clone(), stmt.value.clone());
            push(rebuild(
                spec,
                spec.levels.clone(),
                spec.arrays.clone(),
                body,
            ));
        }
    }

    // Zero an array's initial values (keeps lengths, so addressing through
    // it becomes all-zeros but stays in range).
    for (i, a) in spec.arrays.iter().enumerate() {
        if !matches!(a.init, prevv_ir::ArrayInit::Zero) {
            let mut arrays = spec.arrays.clone();
            arrays[i] = ArrayDecl::zeroed(a.name.clone(), a.len);
            push(rebuild(
                spec,
                spec.levels.clone(),
                arrays,
                spec.body.clone(),
            ));
        }
    }

    // One-step expression simplifications, one site at a time.
    for (i, stmt) in spec.body.iter().enumerate() {
        for (slot, e) in [(0usize, &stmt.index), (1, &stmt.value)] {
            for simpler in shrink_expr(e) {
                let mut body = spec.body.clone();
                body[i] = match slot {
                    0 => replace_index(stmt, simpler),
                    _ => replace_value(stmt, simpler),
                };
                push(rebuild(
                    spec,
                    spec.levels.clone(),
                    spec.arrays.clone(),
                    body,
                ));
            }
        }
        if let Some(g) = &stmt.guard {
            for simpler in shrink_expr(g) {
                let mut body = spec.body.clone();
                body[i] =
                    Stmt::guarded(stmt.array, stmt.index.clone(), stmt.value.clone(), simpler);
                push(rebuild(
                    spec,
                    spec.levels.clone(),
                    spec.arrays.clone(),
                    body,
                ));
            }
        }
    }

    // Drop the depth hint.
    if spec.depth_hint().is_some() {
        push(rebuild(
            spec,
            spec.levels.clone(),
            spec.arrays.clone(),
            spec.body.clone(),
        ));
    }

    out
}

/// Greedily shrinks `spec` while `still_fails` holds, up to `budget`
/// predicate evaluations. Returns the smallest failing spec found.
pub fn shrink_to_fixpoint<F>(spec: &KernelSpec, mut budget: usize, mut still_fails: F) -> KernelSpec
where
    F: FnMut(&KernelSpec) -> bool,
{
    let mut current = spec.clone();
    'outer: loop {
        for candidate in shrink(&current) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if still_fails(&candidate) {
                current = candidate;
                continue 'outer;
            }
        }
        break;
    }
    current
}

/// Rebuilds a spec preserving name; drops the depth hint unless the caller
/// re-adds it (shrinking treats the hint as removable).
fn rebuild(
    orig: &KernelSpec,
    levels: Vec<LoopLevel>,
    arrays: Vec<ArrayDecl>,
    body: Vec<Stmt>,
) -> Result<KernelSpec, prevv_ir::KernelError> {
    KernelSpec::new(orig.name.clone(), levels, arrays, body)
}

fn replace_index(stmt: &Stmt, index: Expr) -> Stmt {
    match &stmt.guard {
        Some(g) => Stmt::guarded(stmt.array, index, stmt.value.clone(), g.clone()),
        None => Stmt::store(stmt.array, index, stmt.value.clone()),
    }
}

fn replace_value(stmt: &Stmt, value: Expr) -> Stmt {
    match &stmt.guard {
        Some(g) => Stmt::guarded(stmt.array, stmt.index.clone(), value, g.clone()),
        None => Stmt::store(stmt.array, stmt.index.clone(), value),
    }
}

fn map_stmt(stmt: &Stmt, f: &dyn Fn(&Expr) -> Expr) -> Stmt {
    match &stmt.guard {
        Some(g) => Stmt::guarded(stmt.array, f(&stmt.index), f(&stmt.value), f(g)),
        None => Stmt::store(stmt.array, f(&stmt.index), f(&stmt.value)),
    }
}

/// Substitutes `IndVar(level)` with `Const(value)` throughout.
fn subst_var(e: &Expr, level: usize, value: Value) -> Expr {
    match e {
        Expr::IndVar(l) if *l == level => Expr::lit(value),
        Expr::Const(_) | Expr::IndVar(_) => e.clone(),
        Expr::Load(a, idx) => Expr::load(*a, subst_var(idx, level, value)),
        Expr::Binary(op, l, r) => {
            Expr::bin(*op, subst_var(l, level, value), subst_var(r, level, value))
        }
        Expr::Opaque(f, x) => subst_var(x, level, value).opaque(*f),
    }
}

/// One-step structural simplifications of an expression.
fn shrink_expr(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Const(v) if *v != 0 => vec![Expr::lit(0)],
        Expr::Const(_) => vec![],
        Expr::IndVar(_) => vec![Expr::lit(0)],
        Expr::Load(_, idx) => vec![(**idx).clone(), Expr::lit(0)],
        Expr::Binary(_, l, r) => vec![(**l).clone(), (**r).clone()],
        Expr::Opaque(_, x) => vec![(**x).clone()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        for seed in 0..16u64 {
            assert_eq!(generate(seed, &cfg), generate(seed, &cfg), "seed {seed}");
        }
    }

    #[test]
    fn generated_kernels_are_valid_and_bounded() {
        let cfg = GenConfig::default();
        for seed in 0..64u64 {
            let k = generate(seed, &cfg);
            k.validate().expect("generator emits valid kernels");
            let count = k.iteration_count();
            assert!(
                (1..=cfg.max_iterations).contains(&count),
                "seed {seed}: {count} iterations"
            );
        }
    }

    #[test]
    fn generator_covers_structural_features() {
        let cfg = GenConfig::default();
        let (mut guards, mut indirect, mut opaque, mut multi, mut tri, mut hint) =
            (false, false, false, false, false, false);
        for seed in 0..256u64 {
            let k = generate(seed, &cfg);
            guards |= k.body.iter().any(|s| s.guard.is_some());
            indirect |= k.body.iter().any(|s| !s.index.loads().is_empty());
            opaque |= k.body.iter().any(|s| matches!(&s.index, Expr::Opaque(..)));
            multi |= k.levels.len() > 1;
            tri |= k
                .levels
                .iter()
                .any(|l| matches!(l.lo, Bound::OuterPlus(..)));
            hint |= k.depth_hint().is_some();
        }
        assert!(
            guards && indirect && opaque && multi && tri && hint,
            "feature coverage: guards={guards} indirect={indirect} opaque={opaque} \
             multi={multi} tri={tri} hint={hint}"
        );
    }

    #[test]
    fn generated_addresses_stay_in_bounds() {
        // The interval tracking plus in-range inits must keep every runtime
        // address inside its array without relying on the Euclidean wrap.
        let cfg = GenConfig::default();
        for seed in 0..64u64 {
            let k = generate(seed, &cfg);
            let mut ram: Vec<Vec<Value>> = k.arrays.iter().map(|a| a.initial()).collect();
            for iter in k.iteration_space() {
                for stmt in &k.body {
                    if let Some(g) = &stmt.guard {
                        if eval(g, &iter, &ram, &k) == 0 {
                            continue;
                        }
                    }
                    let raw = eval(&stmt.index, &iter, &ram, &k);
                    let len = k.arrays[stmt.array.0].len as Value;
                    assert!(
                        (0..len).contains(&raw),
                        "seed {seed}: raw address {raw} outside [0, {len})"
                    );
                    let v = eval(&stmt.value, &iter, &ram, &k);
                    ram[stmt.array.0][raw as usize] = v;
                }
            }
        }
    }

    fn eval(e: &Expr, iter: &[Value], ram: &[Vec<Value>], k: &KernelSpec) -> Value {
        match e {
            Expr::Const(v) => *v,
            Expr::IndVar(l) => iter[*l],
            Expr::Load(a, idx) => {
                let raw = eval(idx, iter, ram, k);
                ram[a.0][k.resolve_index(*a, raw)]
            }
            Expr::Binary(op, l, r) => op.apply(eval(l, iter, ram, k), eval(r, iter, ram, k)),
            Expr::Opaque(f, x) => f.apply(eval(x, iter, ram, k)),
        }
    }

    #[test]
    fn shrink_candidates_are_valid_and_smaller_or_equal() {
        let cfg = GenConfig::default();
        for seed in 0..32u64 {
            let k = generate(seed, &cfg);
            for c in shrink(&k) {
                c.validate().expect("shrunk candidates stay valid");
                // Un-triangularising a bound can grow the count somewhat,
                // but never past the configured generation ceiling.
                assert!(c.iteration_count() >= 1);
                assert!(c.iteration_count() <= cfg.max_iterations);
            }
        }
    }

    #[test]
    fn shrink_to_fixpoint_minimises_statement_count() {
        // Predicate: "has at least one store to array 0". The fixpoint must
        // be a single-statement, single-level kernel.
        let cfg = GenConfig::default();
        let seed = (0..256u64)
            .find(|s| {
                let k = generate(*s, &cfg);
                k.body.len() > 1
                    && k.levels.len() > 1
                    && k.body.iter().any(|st| st.array == ArrayId(0))
            })
            .expect("some seed yields a multi-stmt nest storing to array 0");
        let k = generate(seed, &cfg);
        let small =
            shrink_to_fixpoint(&k, 10_000, |c| c.body.iter().any(|s| s.array == ArrayId(0)));
        assert!(small.body.iter().any(|s| s.array == ArrayId(0)));
        assert_eq!(
            small.body.len(),
            1,
            "fixpoint should drop unrelated statements"
        );
        assert_eq!(small.levels.len(), 1, "fixpoint should drop inner levels");
    }

    #[test]
    fn generated_kernels_round_trip_through_pvk_text() {
        let cfg = GenConfig::default();
        for seed in 0..64u64 {
            let k = generate(seed, &cfg);
            let src = prevv_ir::pretty::render(&k);
            let body: String = src.lines().skip(1).collect::<Vec<_>>().join("\n");
            let reparsed = prevv_ir::parse::parse_kernel(&k.name, &body)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            assert_eq!(k, reparsed, "seed {seed} round trip\n{src}");
            assert_eq!(
                k.depth_hint().map(|(d, _)| d),
                reparsed.depth_hint().map(|(d, _)| d),
                "seed {seed} depth hint"
            );
        }
    }
}
