//! # prevv-kernels — benchmark kernels with data hazards
//!
//! The evaluation workloads of the PreVV reproduction:
//!
//! * [`paper`] — the five kernels of the paper's §VI (`polyn_mult`, `2mm`,
//!   `3mm`, `gaussian`, `triangular`), parameterized and scaled to
//!   laptop-simulation sizes;
//! * [`extra`] — the motivating examples of Fig. 2, a histogram with a
//!   tunable hazard rate, the §V-C guarded-update (deadlock) shape, a
//!   serial reduction, and an overlapped-pairs family for the scalability
//!   experiment;
//! * [`workload`] — deterministic, seeded input generators.
//!
//! Every kernel is a [`prevv_ir::KernelSpec`], so it can be executed by the
//! golden interpreter and synthesized to a dataflow circuit with any
//! disambiguation controller attached.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extra;
pub mod gen;
pub mod paper;
pub mod suite;
pub mod workload;
