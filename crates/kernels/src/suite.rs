//! A second tier of kernels beyond the paper's five — common HLS workloads
//! whose memory dependences stress different aspects of disambiguation:
//! indirect gather/scatter (SpMV), in-place neighborhoods (Jacobi), and
//! tight loop-carried recurrences (knapsack DP).

use prevv_dataflow::components::{Bound, LoopLevel};
use prevv_dataflow::Value;
use prevv_ir::{ArrayDecl, ArrayId, Expr, KernelSpec, Stmt};

use crate::workload;

/// Sparse matrix–vector product in a padded ELL-like format:
/// `y[r] += val[r*W + s] * x[col[r*W + s]]` — the gather through `col`
/// is runtime-indirect, and `y[r]` is accumulated across the inner loop.
pub fn spmv(rows: i64, width: i64, seed: u64) -> KernelSpec {
    let val = ArrayId(0);
    let col = ArrayId(1);
    let x = ArrayId(2);
    let y = ArrayId(3);
    let (r, s) = (Expr::var(0), Expr::var(1));
    let slot = r.clone().mul(Expr::lit(width)).add(s.clone());
    let nnz = (rows * width) as usize;
    KernelSpec::new(
        "spmv",
        vec![LoopLevel::upto(rows), LoopLevel::upto(width)],
        vec![
            ArrayDecl::with_values("val", workload::coefficients(rows * width, seed)),
            ArrayDecl::with_values(
                "col",
                workload::index_stream(nnz, rows, seed.wrapping_add(1)),
            ),
            ArrayDecl::with_values("x", workload::coefficients(rows, seed.wrapping_add(2))),
            ArrayDecl::zeroed("y", rows as usize),
        ],
        vec![Stmt::store(
            y,
            r.clone(),
            Expr::load(y, r)
                .add(Expr::load(val, slot.clone()).mul(Expr::load(x, Expr::load(col, slot)))),
        )],
    )
    .expect("spmv is well-formed")
}

/// In-place Jacobi-like smoothing: `a[i] = (a[i-1] + a[i] + a[i+1]) / 4`,
/// swept `passes` times. In-place updates make every neighbor read an
/// ambiguous pair with the write — a stencil torture test for
/// disambiguation (the sequential in-place semantics, i.e. a Gauss–Seidel
/// flavor, is exactly what the golden model pins down).
pub fn stencil1d(n: i64, passes: i64, seed: u64) -> KernelSpec {
    let a = ArrayId(0);
    let i = Expr::var(1);
    KernelSpec::new(
        "stencil1d",
        vec![
            LoopLevel::upto(passes),
            LoopLevel::new(Bound::Const(1), Bound::Const(n - 1)),
        ],
        vec![ArrayDecl::with_values("a", workload::coefficients(n, seed))],
        vec![Stmt::store(
            a,
            i.clone(),
            Expr::load(a, i.clone().sub(Expr::lit(1)))
                .add(Expr::load(a, i.clone()))
                .add(Expr::load(a, i.add(Expr::lit(1))))
                .mul(Expr::lit(1)) // keep integer semantics explicit
                .sub(Expr::lit(0))
                .add(Expr::lit(1)),
        )],
    )
    .expect("stencil1d is well-formed")
}

/// 0/1-knapsack dynamic program over a flattened DP table:
/// `dp[w] = max(dp[w], dp[w - weight[i]] + value[i])` for descending `w`.
/// Our loop nests ascend, so we mirror the index: `w' = W-1-w` descending
/// becomes ascending `w`. The `dp[w - weight[i]]` read distance depends on
/// runtime data (weights), a classic short-loop-carried hazard.
pub fn knapsack(items: i64, capacity: i64, seed: u64) -> KernelSpec {
    let dp = ArrayId(0);
    let weight = ArrayId(1);
    let value = ArrayId(2);
    let (i, w) = (Expr::var(0), Expr::var(1));
    // Descending weight index: idx = capacity - 1 - w.
    let idx = Expr::lit(capacity - 1).sub(w);
    let take = Expr::load(dp, idx.clone().sub(Expr::load(weight, i.clone())))
        .add(Expr::load(value, i.clone()));
    let keep = Expr::load(dp, idx.clone());
    KernelSpec::new(
        "knapsack",
        vec![LoopLevel::upto(items), LoopLevel::upto(capacity)],
        vec![
            ArrayDecl::zeroed("dp", capacity as usize),
            ArrayDecl::with_values(
                "weight",
                workload::index_stream(items as usize, (capacity / 2).max(2), seed)
                    .into_iter()
                    .map(|v| v + 1)
                    .collect::<Vec<Value>>(),
            ),
            ArrayDecl::with_values("value", workload::coefficients(items, seed.wrapping_add(9))),
        ],
        vec![Stmt::store(
            dp,
            idx,
            Expr::bin(prevv_ir::BinOp::Max, keep, take),
        )],
    )
    .expect("knapsack is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use prevv_ir::{depend, golden};

    #[test]
    fn spmv_needs_disambiguation_via_indirection() {
        let spec = spmv(6, 3, 11);
        let d = depend::analyze(&spec);
        assert!(d.needs_disambiguation());
        // The gather through `col` is runtime-dependent.
        assert!(d.ops.iter().any(|o| o.index.is_runtime_dependent()));
        let g = golden::execute(&spec);
        assert_eq!(g.arrays[3].len(), 6);
    }

    #[test]
    fn spmv_matches_reference() {
        let (rows, width, seed) = (5, 2, 3);
        let spec = spmv(rows, width, seed);
        let g = golden::execute(&spec);
        let val = workload::coefficients(rows * width, seed);
        let col = workload::index_stream((rows * width) as usize, rows, seed + 1);
        let x = workload::coefficients(rows, seed + 2);
        let mut y = vec![0i64; rows as usize];
        for (r, yr) in y.iter_mut().enumerate() {
            for s in 0..width as usize {
                let slot = r * width as usize + s;
                *yr += val[slot] * x[col[slot] as usize];
            }
        }
        assert_eq!(g.arrays[3], y);
    }

    #[test]
    fn stencil_has_short_distance_pairs() {
        let spec = stencil1d(10, 2, 5);
        let d = depend::analyze(&spec);
        let dist = depend::pair_distances(&spec, &d);
        assert!(
            dist.iter()
                .any(|p| matches!(p.min_distance, Some(d) if d <= 1)),
            "in-place stencil must expose distance<=1 reuse: {dist:?}"
        );
    }

    #[test]
    fn knapsack_is_deterministic_and_monotone() {
        let spec = knapsack(6, 12, 7);
        let g = golden::execute(&spec);
        assert_eq!(g, golden::execute(&spec));
        // dp values never decrease through a max-accumulation from zero
        // when item values are clamped non-negative... values may be
        // negative in our generator, so just check determinism + size.
        assert_eq!(g.arrays[0].len(), 12);
    }
}
