//! Integration of the N-way routing components inside a running circuit:
//! tokens are demuxed by parity into two differently buffered paths and
//! recombined by a control merge whose index stream is checked against the
//! data stream.

use std::cell::RefCell;
use std::rc::Rc;

use prevv_dataflow::components::{
    BinOp, BinaryAlu, Buffer, Constant, ControlMerge, Demux, Fork, IterSource, Sink,
};
use prevv_dataflow::{Netlist, Simulator, SquashBus, Token};

type Collected = Rc<RefCell<Vec<Token>>>;

/// source i → fork → [demux by i%2] → buffer(1) / buffer(4) → control merge
/// → sinks collecting (data, index).
fn build() -> (Netlist, SquashBus, Collected, Collected) {
    let mut net = Netlist::new();
    let bus = SquashBus::new();
    let src = net.channel();
    let data_in = net.channel();
    let sel_trig = net.channel();
    let sel_buf = net.channel();
    let rem_lhs = net.channel();
    let two_trig = net.channel();
    let two = net.channel();
    let parity = net.channel();
    let even = net.channel();
    let odd = net.channel();
    let even_b = net.channel();
    let odd_b = net.channel();
    let merged = net.channel();
    let index = net.channel();

    net.add(
        "src",
        IterSource::new((0..16).map(|i| vec![i]).collect(), vec![src], bus.clone()),
    );
    net.add("fork", Fork::new(src, vec![data_in, sel_trig]));
    net.add("selbuf", Buffer::new(4, sel_trig, sel_buf));
    net.add("fork2", Fork::new(sel_buf, vec![rem_lhs, two_trig]));
    net.add("two", Constant::new(2, two_trig, two));
    net.add(
        "rem",
        BinaryAlu::with_latency(BinOp::Rem, 1, rem_lhs, two, parity),
    );
    net.add("demux", Demux::new(data_in, parity, vec![even, odd]));
    net.add("ebuf", Buffer::new(1, even, even_b));
    net.add("obuf", Buffer::new(4, odd, odd_b));
    net.add(
        "cmerge",
        ControlMerge::new(vec![even_b, odd_b], merged, index),
    );
    let (dsink, data) = Sink::collecting(vec![merged]);
    let (isink, idx) = Sink::collecting(vec![index]);
    net.add("dsink", dsink);
    net.add("isink", isink);
    (net, bus, data, idx)
}

#[test]
fn demux_and_control_merge_round_trip_every_token() {
    let (net, bus, data, idx) = build();
    let mut sim = Simulator::new(net, bus).expect("valid netlist");
    sim.run().expect("completes");

    let data = data.borrow();
    let idx = idx.borrow();
    assert_eq!(data.len(), 16, "every iteration's token arrives");
    assert_eq!(idx.len(), 16);

    // Each data token's parity must match the control merge's index for the
    // same iteration (pair by tag, as a real consumer would).
    for d in data.iter() {
        let i = idx
            .iter()
            .find(|t| t.tag.iter == d.tag.iter)
            .expect("paired index token");
        assert_eq!(
            d.value % 2,
            i.value,
            "token {} came out of the wrong merge input",
            d.value
        );
    }
    // All sixteen distinct values arrived.
    let mut values: Vec<i64> = data.iter().map(|t| t.value).collect();
    values.sort_unstable();
    assert_eq!(values, (0..16).collect::<Vec<i64>>());
}

#[test]
fn uneven_buffering_does_not_lose_or_duplicate_tokens() {
    // Run several times (deterministic, but the structure exercises the
    // partial-delivery paths of the control merge under backpressure from
    // the depth-1 even buffer).
    for _ in 0..3 {
        let (net, bus, data, _) = build();
        let mut sim = Simulator::new(net, bus).expect("valid");
        let report = sim.run().expect("completes");
        assert_eq!(data.borrow().len(), 16);
        assert!(report.cycles < 200, "routing must not serialize badly");
    }
}
