//! Engine-level squash semantics, isolated from any memory controller: a
//! scripted component posts squashes on the bus and the tests pin down
//! exactly what the engine flushes, what survives, and what the source
//! replays.

use std::cell::RefCell;
use std::rc::Rc;

use prevv_dataflow::components::{Buffer, IterSource, Sink};
use prevv_dataflow::{
    ChannelId, Component, Netlist, Ports, Signals, SimConfig, Simulator, SquashBus, Token,
};

/// Consumes tokens; each time it sees iteration `trigger_at` it posts a
/// squash from `squash_from`, up to `max_fires` times in total, so the
/// stream eventually passes.
#[derive(Debug)]
struct ScriptedSquasher {
    input: ChannelId,
    bus: SquashBus,
    trigger_at: u64,
    squash_from: u64,
    max_fires: u32,
    fires: u32,
    seen: Rc<RefCell<Vec<Token>>>,
}

impl Component for ScriptedSquasher {
    fn type_name(&self) -> &'static str {
        "scripted_squasher"
    }
    fn ports(&self) -> Ports {
        Ports::new(vec![self.input], vec![])
    }
    fn eval(&self, sig: &mut Signals) {
        sig.accept(self.input);
    }
    fn commit(&mut self, sig: &Signals) -> bool {
        if let Some(t) = sig.taken(self.input) {
            self.seen.borrow_mut().push(t);
            if t.tag.iter == self.trigger_at && self.fires < self.max_fires {
                self.fires += 1;
                self.bus.post(self.squash_from);
            }
        }
        false
    }
}

fn scripted_circuit(
    iters: i64,
    trigger_at: u64,
    squash_from: u64,
) -> (Netlist, SquashBus, Rc<RefCell<Vec<Token>>>) {
    scripted_circuit_fires(iters, trigger_at, squash_from, 1)
}

fn scripted_circuit_fires(
    iters: i64,
    trigger_at: u64,
    squash_from: u64,
    max_fires: u32,
) -> (Netlist, SquashBus, Rc<RefCell<Vec<Token>>>) {
    let mut net = Netlist::new();
    let bus = SquashBus::new();
    let src_out = net.channel();
    let buffered = net.channel();
    net.add(
        "src",
        IterSource::new(
            (0..iters).map(|i| vec![i]).collect(),
            vec![src_out],
            bus.clone(),
        ),
    );
    net.add("buf", Buffer::new(4, src_out, buffered));
    let seen = Rc::new(RefCell::new(Vec::new()));
    net.add(
        "squasher",
        ScriptedSquasher {
            input: buffered,
            bus: bus.clone(),
            trigger_at,
            squash_from,
            max_fires,
            fires: 0,
            seen: seen.clone(),
        },
    );
    (net, bus, seen)
}

#[test]
fn squash_replays_from_the_requested_iteration() {
    let (net, bus, seen) = scripted_circuit(8, 5, 3);
    let mut sim = Simulator::new(net, bus).expect("valid");
    let report = sim.run().expect("completes");
    assert_eq!(report.squashes, 1);

    let tokens = seen.borrow();
    // Before the squash: iterations 0..=5 in epoch 0. After: 3..=7 in
    // epoch 1. (Iteration 5 triggered the squash from 3.)
    let epoch0: Vec<u64> = tokens
        .iter()
        .filter(|t| t.tag.epoch == 0)
        .map(|t| t.tag.iter)
        .collect();
    let epoch1: Vec<u64> = tokens
        .iter()
        .filter(|t| t.tag.epoch == 1)
        .map(|t| t.tag.iter)
        .collect();
    assert!(epoch0.contains(&5), "the trigger itself was consumed");
    assert!(
        epoch0.iter().all(|&i| i <= 5),
        "nothing beyond the trigger leaked in epoch 0: {epoch0:?}"
    );
    assert_eq!(
        epoch1,
        vec![3, 4, 5, 6, 7],
        "replay restarts exactly at the squash point"
    );
}

#[test]
fn tokens_of_older_iterations_survive_the_flush() {
    // Squash from iteration 6 while iterations 0..6 are already delivered:
    // they must each be seen exactly once.
    let (net, bus, seen) = scripted_circuit(10, 6, 6);
    let mut sim = Simulator::new(net, bus).expect("valid");
    sim.run().expect("completes");
    let tokens = seen.borrow();
    for i in 0..6u64 {
        let count = tokens.iter().filter(|t| t.tag.iter == i).count();
        assert_eq!(count, 1, "iteration {i} must be seen exactly once");
    }
    // Iteration 6 is seen twice: once per epoch.
    let six = tokens.iter().filter(|t| t.tag.iter == 6).count();
    assert_eq!(six, 2);
}

#[test]
fn double_squash_converges() {
    // Trigger at 4, squash from 4, twice: epoch 1's replay of iteration 4
    // triggers a second squash, and epoch 2's replay finally passes.
    let (net, bus, seen) = scripted_circuit_fires(6, 4, 4, 2);
    let mut sim = Simulator::new(net, bus)
        .expect("valid")
        .with_config(SimConfig {
            max_cycles: 10_000,
            watchdog: 500,
            ..SimConfig::default()
        });
    let report = sim.run().expect("completes");
    assert_eq!(report.squashes, 2);
    let tokens = seen.borrow();
    let last_epoch = tokens.iter().map(|t| t.tag.epoch).max().expect("tokens");
    assert_eq!(last_epoch, 2);
    // The final epoch delivers 4 and 5 to completion.
    let final_iters: Vec<u64> = tokens
        .iter()
        .filter(|t| t.tag.epoch == 2)
        .map(|t| t.tag.iter)
        .collect();
    assert_eq!(final_iters, vec![4, 5]);
}

#[test]
fn flush_purges_buffered_tokens_of_squashed_iterations() {
    // A deep buffer holds iterations ahead of the squasher; after the
    // squash none of the flushed tokens may reach it in the old epoch.
    let mut net = Netlist::new();
    let bus = SquashBus::new();
    let src_out = net.channel();
    let deep = net.channel();
    net.add(
        "src",
        IterSource::new(
            (0..12).map(|i| vec![i]).collect(),
            vec![src_out],
            bus.clone(),
        ),
    );
    net.add("deep", Buffer::new(8, src_out, deep));
    let seen = Rc::new(RefCell::new(Vec::new()));
    net.add(
        "squasher",
        ScriptedSquasher {
            input: deep,
            bus: bus.clone(),
            trigger_at: 2,
            squash_from: 3,
            max_fires: 1,
            fires: 0,
            seen: seen.clone(),
        },
    );
    let mut sim = Simulator::new(net, bus).expect("valid");
    sim.run().expect("completes");
    let tokens = seen.borrow();
    // Iterations >= 3 must never be observed in epoch 0 even though the
    // buffer was holding several of them when the squash hit.
    assert!(
        tokens
            .iter()
            .filter(|t| t.tag.epoch == 0)
            .all(|t| t.tag.iter <= 2),
        "flushed tokens leaked: {tokens:?}"
    );
    // And every iteration is eventually delivered in epoch 1.
    let epoch1: Vec<u64> = tokens
        .iter()
        .filter(|t| t.tag.epoch == 1)
        .map(|t| t.tag.iter)
        .collect();
    assert_eq!(epoch1, (3..12).collect::<Vec<u64>>());
}

#[test]
fn sink_and_source_quiesce_after_replay() {
    let (net, bus, _) = scripted_circuit(16, 9, 2);
    let mut sim = Simulator::new(net, bus).expect("valid");
    let report = sim.run().expect("completes");
    assert!(sim.quiescent());
    // 16 + (16 - 2) iterations of source work happened in total.
    assert!(report.transfers >= 30);
    let _ = Sink::new(vec![]); // keep the import exercised in this test file
}
