//! Scheduler equivalence and diagnostics: the event-driven dirty-set
//! fixpoint must be observationally identical to the dense reference sweep —
//! same cycle counts, same outputs, same stall attribution, and the same
//! error (naming the same channels) when a circuit is genuinely divergent.

use std::cell::RefCell;
use std::rc::Rc;

use prevv_dataflow::components::{
    BinOp, BinaryAlu, Branch, Buffer, Constant, Fork, IterSource, Join, Merge, Mux, Sink,
};
use prevv_dataflow::{
    Netlist, Scheduler, SimConfig, SimError, SimReport, Simulator, SquashBus, Token,
};

fn config(scheduler: Scheduler) -> SimConfig {
    SimConfig {
        scheduler,
        ..SimConfig::default()
    }
}

/// Runs a netlist builder under one scheduler and returns the report plus
/// whatever the collecting sink saw (sorted: sinks don't order concurrent
/// arrivals).
fn run_with(
    build: impl Fn() -> (Netlist, SquashBus, Rc<RefCell<Vec<Token>>>),
    scheduler: Scheduler,
) -> (SimReport, Vec<i64>) {
    let (net, bus, store) = build();
    let mut sim = Simulator::new(net, bus)
        .expect("valid netlist")
        .with_config(config(scheduler));
    let report = sim.run().expect("completes");
    let mut values: Vec<i64> = store.borrow().iter().map(|t| t.value).collect();
    values.sort_unstable();
    (report, values)
}

/// Asserts byte-identical `SimReport`s and outputs between both schedulers.
fn assert_equivalent(build: impl Fn() -> (Netlist, SquashBus, Rc<RefCell<Vec<Token>>>)) {
    let (dense, dense_vals) = run_with(&build, Scheduler::Dense);
    let (event, event_vals) = run_with(&build, Scheduler::EventDriven);
    if let Some(diff) = dense.diff(&event) {
        panic!("schedulers disagree: {diff}");
    }
    assert_eq!(dense_vals, event_vals, "collected outputs differ");
}

/// A multi-stage arithmetic pipeline: `(i + 1) * 2` through forked triggers,
/// buffers, and two ALU latencies.
fn pipeline(
    n: i64,
    add_latency: u32,
    mul_latency: u32,
    buf_cap: usize,
) -> impl Fn() -> (Netlist, SquashBus, Rc<RefCell<Vec<Token>>>) {
    move || {
        let mut net = Netlist::new();
        let bus = SquashBus::new();
        let src_out = net.channel();
        let f1 = net.channel();
        let f2 = net.channel();
        let trig = net.channel();
        let one = net.channel();
        let sum = net.channel();
        let sum_f1 = net.channel();
        let sum_f2 = net.channel();
        let two = net.channel();
        let prod = net.channel();
        let rows = (0..n).map(|i| vec![i]).collect();
        net.add("src", IterSource::new(rows, vec![src_out], bus.clone()));
        net.add("fork", Fork::new(src_out, vec![f1, f2]));
        net.add("buf", Buffer::new(buf_cap, f2, trig));
        net.add("one", Constant::new(1, trig, one));
        net.add(
            "add",
            BinaryAlu::with_latency(BinOp::Add, add_latency, f1, one, sum),
        );
        net.add("fork2", Fork::new(sum, vec![sum_f1, sum_f2]));
        net.add("two", Constant::new(2, sum_f2, two));
        net.add(
            "mul",
            BinaryAlu::with_latency(BinOp::Mul, mul_latency, sum_f1, two, prod),
        );
        let (sink, store) = Sink::collecting(vec![prod]);
        net.add("sink", sink);
        (net, bus, store)
    }
}

#[test]
fn schedulers_agree_on_pipelines() {
    assert_equivalent(pipeline(32, 1, 3, 2));
    assert_equivalent(pipeline(64, 2, 4, 1));
    assert_equivalent(pipeline(1, 1, 1, 1));
    assert_equivalent(pipeline(0, 1, 1, 1));
}

#[test]
fn schedulers_agree_on_routing_circuits() {
    // Branch/Merge diamond: odd values detour through an extra adder.
    let build = || {
        let mut net = Netlist::new();
        let bus = SquashBus::new();
        let src_out = net.channel();
        let f_data = net.channel();
        let f_par = net.channel();
        let par_trig = net.channel();
        let one_p = net.channel();
        let parity = net.channel();
        let odd = net.channel();
        let even = net.channel();
        let odd_buf = net.channel();
        let trig2 = net.channel();
        let hundred = net.channel();
        let bumped = net.channel();
        let merged = net.channel();
        let rows = (0..24).map(|i| vec![i]).collect();
        net.add("src", IterSource::new(rows, vec![src_out], bus.clone()));
        net.add("fork", Fork::new(src_out, vec![f_data, f_par, par_trig]));
        net.add("one_p", Constant::new(1, par_trig, one_p));
        net.add(
            "parity",
            BinaryAlu::with_latency(BinOp::And, 1, f_par, one_p, parity),
        );
        // Parity arrives one cycle after the data: buffer the data so the
        // branch can pair them without a combinational wait.
        let data_buf = net.channel();
        net.add("dbuf", Buffer::new(4, f_data, data_buf));
        net.add("branch", Branch::new(data_buf, parity, odd, even));
        net.add("obuf", Buffer::new(2, odd, odd_buf));
        let odd_f1 = net.channel();
        let odd_f2 = net.channel();
        net.add("ofork", Fork::new(odd_buf, vec![odd_f1, odd_f2]));
        net.add("c100", Constant::new(100, odd_f2, hundred));
        net.add("trig2src", Buffer::new(2, odd_f1, trig2));
        net.add(
            "bump",
            BinaryAlu::with_latency(BinOp::Add, 2, trig2, hundred, bumped),
        );
        net.add("merge", Merge::new(vec![bumped, even], merged));
        let (sink, store) = Sink::collecting(vec![merged]);
        net.add("sink", sink);
        (net, bus, store)
    };
    assert_equivalent(build);
}

/// Satellite 1: both schedulers must refuse a genuinely divergent circuit
/// with the *same* `CombinationalCycle` error, naming the same channels.
///
/// The unbuffered loop here is a Mux whose select is fed back from its own
/// output through a Fork and a priority Merge, with the two mux legs holding
/// different values (1 and 0): once a token enters the loop the select
/// oscillates 0 -> 1 -> 0 within a single fixpoint and the data wires churn
/// forever. A Branch gates loop entry on the *second* iteration, so cycle 0
/// converges (exercising the event scheduler's warm-start path) and the
/// divergence is detected at cycle 1 by both schedulers.
///
/// Note this has to be a hand-built netlist: the repo's divergence fixture
/// `kernels/bad/combinational_loop.pvk` is refused *statically* (PV103,
/// pinned in prevv-analyze's tests) and cannot diverge at runtime — every
/// synthesized ALU/controller is registered, and an identity copy loop is an
/// idempotent fixpoint anyway. Runtime divergence needs a loop that rewrites
/// a value to something different, which no lint-clean kernel synthesizes.
#[test]
fn schedulers_name_the_same_divergent_channels() {
    let build = || {
        let mut net = Netlist::new();
        let bus = SquashBus::new();
        let data = net.channel();
        let cond = net.channel();
        let v_f = net.channel();
        let v_t = net.channel();
        let bv_f = net.channel();
        let bv_t = net.channel();
        let enter = net.channel();
        let safe = net.channel();
        let loop_back = net.channel();
        let sel = net.channel();
        let mux_out = net.channel();
        let spill = net.channel();
        // Iteration 0 routes its token to the safe sink; iteration 1 routes
        // it into the unbuffered loop.
        let rows = vec![vec![7, 0, 1, 0], vec![7, 1, 1, 0]];
        net.add(
            "src",
            IterSource::new(rows, vec![data, cond, v_f, v_t], bus.clone()),
        );
        net.add("bf", Buffer::new(2, v_f, bv_f));
        net.add("bt", Buffer::new(2, v_t, bv_t));
        net.add("gate", Branch::new(data, cond, enter, safe));
        net.add("safe_sink", Sink::new(vec![safe]));
        net.add("merge", Merge::new(vec![loop_back, enter], sel));
        net.add("mux", Mux::new(sel, bv_f, bv_t, mux_out));
        net.add("fork", Fork::new(mux_out, vec![loop_back, spill]));
        net.add("spill_sink", Sink::new(vec![spill]));
        (net, bus, (sel, mux_out, loop_back))
    };

    let mut errors = Vec::new();
    for scheduler in [Scheduler::Dense, Scheduler::EventDriven] {
        let (net, bus, (sel, mux_out, loop_back)) = build();
        let mut sim = Simulator::new(net, bus)
            .expect("structurally valid")
            .with_config(config(scheduler));
        match sim.run() {
            Err(SimError::CombinationalCycle { cycle, channels }) => {
                assert_eq!(cycle, 1, "{scheduler:?}: cycle 0 must converge");
                assert!(!channels.is_empty(), "{scheduler:?}: channels named");
                for ch in [sel, mux_out, loop_back] {
                    assert!(
                        channels.contains(&ch),
                        "{scheduler:?}: loop channel {ch} must be named, got {channels:?}"
                    );
                }
                // The error message names the churning channels.
                let msg = SimError::CombinationalCycle {
                    cycle,
                    channels: channels.clone(),
                }
                .to_string();
                assert!(msg.contains("non-converging channels"), "{msg}");
                errors.push(channels);
            }
            other => panic!("{scheduler:?}: expected CombinationalCycle, got {other:?}"),
        }
    }
    assert_eq!(
        errors[0], errors[1],
        "dense and event must name the identical channel set"
    );
}

/// Satellite 2: a stall is "valid and not ready *at the fixpoint*", counted
/// once per channel per cycle — pinned against a hand-checked circuit, and
/// identical between schedulers.
#[test]
fn stall_accounting_is_sampled_at_the_fixpoint() {
    let build = || {
        let mut net = Netlist::new();
        let bus = SquashBus::new();
        let src_out = net.channel();
        let slow_in = net.channel();
        let f1 = net.channel();
        let f2 = net.channel();
        let trig = net.channel();
        let one = net.channel();
        let out = net.channel();
        let rows = (0..8).map(|i| vec![i]).collect();
        net.add("src", IterSource::new(rows, vec![src_out], bus.clone()));
        net.add("fork", Fork::new(src_out, vec![f1, f2]));
        net.add("buf", Buffer::new(1, f2, trig));
        net.add("one", Constant::new(1, trig, one));
        net.add("inbuf", Buffer::new(1, f1, slow_in));
        // A 5-cycle multiplier at initiation interval 1 backpressures the
        // channels feeding it.
        net.add(
            "slow",
            BinaryAlu::with_latency(BinOp::Mul, 5, slow_in, one, out),
        );
        let (sink, store) = Sink::collecting(vec![out]);
        net.add("sink", sink);
        (net, bus, store)
    };

    let (dense, _) = run_with(build, Scheduler::Dense);
    let (event, _) = run_with(build, Scheduler::EventDriven);
    if let Some(diff) = dense.diff(&event) {
        panic!("stall attribution diverged: {diff}");
    }

    // Pin the semantics, not just the agreement: the per-channel counts sum
    // to the total, every counted channel stalled at least one full cycle,
    // and the fully-pipelined unit's backpressure shows up (a 5-deep
    // pipeline at II 1 holds valid-high inputs it cannot accept).
    assert!(dense.stall_cycles > 0, "a deep pipeline must stall inputs");
    let per_channel: u64 = dense.stalled_channels.iter().map(|(_, c)| c).sum();
    assert_eq!(
        per_channel, dense.stall_cycles,
        "per-channel attribution must sum to the stall total"
    );
    // Attribution is sorted by count descending.
    for w in dense.stalled_channels.windows(2) {
        assert!(w[0].1 >= w[1].1);
    }
}

/// Satellite 3: slow drain is not deadlock. A 40-cycle ALU with a watchdog
/// of 8 completes: every in-flight token shifting through the pipeline is
/// internal progress, so the no-progress streak never accumulates. (Before
/// commit reported state changes, any quiescence longer than the watchdog
/// window with no channel transfer was misreported as deadlock.)
#[test]
fn watchdog_tolerates_long_latency_drain() {
    let build = || {
        let mut net = Netlist::new();
        let bus = SquashBus::new();
        let src_out = net.channel();
        let f1 = net.channel();
        let f2 = net.channel();
        let trig = net.channel();
        let one = net.channel();
        let out = net.channel();
        net.add(
            "src",
            IterSource::new(vec![vec![3]], vec![src_out], bus.clone()),
        );
        net.add("fork", Fork::new(src_out, vec![f1, f2]));
        net.add("buf", Buffer::new(1, f2, trig));
        net.add("one", Constant::new(1, trig, one));
        // 40 cycles in flight with zero channel transfers while the token
        // marches through the pipe.
        net.add(
            "slow",
            BinaryAlu::with_latency(BinOp::Add, 40, f1, one, out),
        );
        let (sink, store) = Sink::collecting(vec![out]);
        net.add("sink", sink);
        (net, bus, store)
    };
    for scheduler in [Scheduler::Dense, Scheduler::EventDriven] {
        let (net, bus, store) = build();
        let mut sim = Simulator::new(net, bus)
            .expect("valid")
            .with_config(SimConfig {
                max_cycles: 10_000,
                watchdog: 8,
                scheduler,
            });
        let report = sim
            .run()
            .unwrap_or_else(|e| panic!("{scheduler:?}: slow drain misread as failure: {e}"));
        assert!(report.cycles > 40, "the drain really took the latency");
        assert_eq!(store.borrow().iter().map(|t| t.value).sum::<i64>(), 4);
    }
}

/// Satellite 4 (substrate half): randomized shapes — iteration counts,
/// ALU latencies, and buffer capacities drawn per case — must produce
/// byte-identical reports and outputs under both schedulers. The
/// squash-and-replay half of this property lives in the core crate's
/// end-to-end proptests, where a real PreVV controller drives the bus.
mod randomized {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

        #[test]
        fn schedulers_agree_on_random_pipelines(
            n in 0i64..48,
            add_latency in 1u32..6,
            mul_latency in 1u32..6,
            buf_cap in 1usize..5,
        ) {
            let build = pipeline(n, add_latency, mul_latency, buf_cap);
            let (dense, dense_vals) = run_with(&build, Scheduler::Dense);
            let (event, event_vals) = run_with(&build, Scheduler::EventDriven);
            prop_assert!(dense.diff(&event).is_none(), "{}", dense.diff(&event).unwrap());
            prop_assert_eq!(dense_vals, event_vals);
        }
    }
}

/// The inverse guard for satellite 3: a genuinely wedged circuit (a join
/// starved of its second operand) still trips the watchdog under both
/// schedulers — stuck-but-settled components report no state change.
#[test]
fn watchdog_still_trips_on_genuine_deadlock() {
    let build = || {
        let mut net = Netlist::new();
        let bus = SquashBus::new();
        let a = net.channel();
        let a_buf = net.channel();
        let b = net.channel();
        let b_buf = net.channel();
        let out = net.channel();
        net.add("src", IterSource::new(vec![vec![1]], vec![a], bus.clone()));
        net.add("buf_a", Buffer::new(1, a, a_buf));
        net.add("src_b", IterSource::new(vec![], vec![b], bus.clone()));
        net.add("buf_b", Buffer::new(1, b, b_buf));
        net.add("join", Join::new(vec![a_buf, b_buf], out));
        net.add("sink", Sink::new(vec![out]));
        (net, bus)
    };
    for scheduler in [Scheduler::Dense, Scheduler::EventDriven] {
        let (net, bus) = build();
        let mut sim = Simulator::new(net, bus)
            .expect("valid")
            .with_config(SimConfig {
                max_cycles: 100_000,
                watchdog: 50,
                scheduler,
            });
        match sim.run() {
            Err(SimError::Deadlock { detail, .. }) => {
                assert!(detail.contains("buf_a"), "{scheduler:?}: {detail}");
            }
            other => panic!("{scheduler:?}: expected deadlock, got {other:?}"),
        }
    }
}
