//! Graphviz (DOT) export of netlists.
//!
//! Dynamatic ships a DOT view of its elastic circuits; this module provides
//! the same for synthesized netlists, which makes reviewing a generated
//! circuit (or a bug report about one) dramatically easier:
//!
//! ```text
//! cargo run --release --example quickstart   # or any netlist you build
//! dot -Tsvg circuit.dot -o circuit.svg
//! ```

use std::collections::HashMap;

use crate::netlist::Netlist;
use crate::signal::ChannelId;

/// Renders the netlist as a Graphviz digraph.
///
/// Components become boxes labeled `instance\n(type)`; every channel
/// becomes an edge from its producer to its consumer, labeled with the
/// channel id. Channels with a missing producer or consumer (the open
/// memory ports of a not-yet-attached kernel) are rendered as dashed edges
/// to a point node so incomplete circuits remain inspectable.
pub fn to_dot(net: &Netlist) -> String {
    let mut producers: HashMap<ChannelId, usize> = HashMap::new();
    let mut consumers: HashMap<ChannelId, usize> = HashMap::new();
    for (node, _, c) in net.iter() {
        let ports = c.ports();
        for ch in ports.outputs {
            producers.insert(ch, node.index());
        }
        for ch in ports.inputs {
            consumers.insert(ch, node.index());
        }
    }

    let mut out = String::from(
        "digraph netlist {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n",
    );
    for (node, label, c) in net.iter() {
        let shape = match c.type_name() {
            "iter_source" => ", shape=invhouse",
            "sink" => ", shape=house",
            "buffer" => ", shape=box3d",
            t if t.contains("memory") || t == "lsq" => ", shape=cylinder",
            _ => "",
        };
        out.push_str(&format!(
            "  n{} [label=\"{}\\n({})\"{}];\n",
            node.index(),
            escape(label),
            c.type_name(),
            shape
        ));
    }
    for i in 0..net.channel_count() {
        let ch = ChannelId::from_index(i);
        match (producers.get(&ch), consumers.get(&ch)) {
            (Some(&p), Some(&c)) => {
                out.push_str(&format!("  n{p} -> n{c} [label=\"{ch}\"];\n"));
            }
            (Some(&p), None) => {
                out.push_str(&format!(
                    "  open{i} [shape=point]; n{p} -> open{i} [label=\"{ch}\", style=dashed];\n"
                ));
            }
            (None, Some(&c)) => {
                out.push_str(&format!(
                    "  open{i} [shape=point]; open{i} -> n{c} [label=\"{ch}\", style=dashed];\n"
                ));
            }
            (None, None) => {}
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{Constant, IterSource, Sink};
    use crate::squash::SquashBus;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut net = Netlist::new();
        let bus = SquashBus::new();
        let trig = net.channel();
        let out = net.channel();
        net.add("src", IterSource::new(vec![vec![0]], vec![trig], bus));
        net.add("one", Constant::new(1, trig, out));
        net.add("sink", Sink::new(vec![out]));
        let dot = to_dot(&net);
        assert!(dot.starts_with("digraph netlist {"));
        assert!(dot.contains("src\\n(iter_source)"));
        assert!(dot.contains("one\\n(constant)"));
        assert!(dot.contains("n0 -> n1"), "source feeds constant: {dot}");
        assert!(dot.contains("n1 -> n2"), "constant feeds sink");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn open_channels_render_dashed() {
        let mut net = Netlist::new();
        let bus = SquashBus::new();
        let out = net.channel();
        net.add("src", IterSource::new(vec![vec![0]], vec![out], bus));
        // `out` has no consumer.
        let dot = to_dot(&net);
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("shape=point"));
    }

    #[test]
    fn labels_are_escaped() {
        let mut net = Netlist::new();
        let a = net.channel();
        net.add("weird\"name", Sink::new(vec![a]));
        let dot = to_dot(&net);
        assert!(dot.contains("weird\\\"name"));
    }
}
