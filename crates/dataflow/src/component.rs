//! The component abstraction every circuit element implements.

use crate::signal::{ChannelId, Signals};

/// Input/output channel lists of a component, used by the netlist for
/// structural validation (every channel needs exactly one producer and one
/// consumer) and for diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ports {
    /// Channels this component consumes from.
    pub inputs: Vec<ChannelId>,
    /// Channels this component produces onto.
    pub outputs: Vec<ChannelId>,
}

impl Ports {
    /// Creates a port list from input and output channel sets.
    pub fn new(inputs: Vec<ChannelId>, outputs: Vec<ChannelId>) -> Self {
        Ports { inputs, outputs }
    }
}

/// A hardware element of an elastic circuit.
///
/// Components follow the standard two-phase synchronous discipline:
///
/// 1. [`eval`](Component::eval) — *combinational*: read input `valid`/data and
///    output `ready` wires, drive output `valid`/data and input `ready`
///    wires. Called repeatedly within one cycle until the wire state reaches
///    a fixpoint, so it must be a pure function of the component's sequential
///    state and the wires (no internal mutation — note the `&self`).
/// 2. [`commit`](Component::commit) — *sequential*: observe which channels
///    fired and update internal registers/FIFOs accordingly. Called exactly
///    once per cycle, after the fixpoint.
///
/// Squash support: [`flush`](Component::flush) drops every internally held
/// token belonging to iteration `from_iter` or later; the engine invokes it
/// on all components when a pipeline squash is posted.
pub trait Component {
    /// Static name of the component kind (for diagnostics and area reports).
    fn type_name(&self) -> &'static str;

    /// Channels this component is wired to.
    fn ports(&self) -> Ports;

    /// Combinational evaluation; see the trait docs for the contract.
    fn eval(&self, sig: &mut Signals);

    /// Sequential update after the wire fixpoint.
    ///
    /// Returns `true` when the update changed internal state that future
    /// [`eval`](Component::eval) outputs, [`is_idle`](Component::is_idle) or
    /// [`occupancy`](Component::occupancy) depend on. The engine uses this
    /// both to seed the event-driven scheduler's dirty set for the next cycle
    /// and as a progress signal for the no-progress watchdog, so the flag
    /// must be honest: pure bookkeeping (cycle counters, statistics
    /// publication) must *not* report a change, while any internal token
    /// motion — even one with no channel transfer this cycle, such as a
    /// pipeline stage shifting — must.
    fn commit(&mut self, sig: &Signals) -> bool;

    /// Queried immediately after a [`commit`](Component::commit) that
    /// returned `true`: did that commit change state that
    /// [`eval`](Component::eval) *reads*? Internal motion that is invisible
    /// to `eval` — a RAM delay line counting down, a reorder buffer waiting
    /// on an in-flight completion — is honest progress for the watchdog but
    /// cannot alter any wire, so the event-driven scheduler need not re-seed
    /// the component's evaluation. Defaults to `true` (every change is
    /// assumed eval-visible), which is always sound; override only when the
    /// commit body tracks the distinction exactly.
    fn eval_invalidated(&self) -> bool {
        true
    }

    /// True when this component's [`commit`](Component::commit) is a
    /// provable no-op — returns `false` and mutates nothing, not even
    /// external bookkeeping — in any cycle where (a) its previous commit
    /// returned `false` and (b) none of its own channels fired. The engine
    /// skips the virtual commit call for such settled components, which is
    /// most of a stalled circuit most cycles.
    ///
    /// Defaults to `false` (commit every cycle, always sound). Opt in only
    /// after auditing the commit body: every state mutation must be guarded
    /// by [`Signals::fired`]/[`Signals::taken`] on own ports, or continue a
    /// chain of changed commits (e.g. a pipeline shifting bubbles reports
    /// `true` each cycle until it settles).
    fn fire_driven_commit(&self) -> bool {
        false
    }

    /// Drops all internally held tokens of iterations `>= from_iter`.
    ///
    /// Components that never hold tokens across cycles can rely on the
    /// default no-op.
    fn flush(&mut self, from_iter: u64) {
        let _ = from_iter;
    }

    /// True when the component holds no in-flight work.
    ///
    /// The simulation terminates when every component is idle. Stateless
    /// elements are always idle.
    fn is_idle(&self) -> bool {
        true
    }

    /// Number of tokens currently held inside the component (diagnostics).
    fn occupancy(&self) -> usize {
        0
    }

    /// Maximum number of tokens this component can hold across cycles — its
    /// elastic storage. A positive capacity means the component registers
    /// its handshake (output `valid` and input `ready` come from state, not
    /// wires), so it breaks any combinational/handshake cycle it sits on.
    /// Purely combinational elements report 0.
    ///
    /// Static analysis uses this to prove a netlist free of unbuffered
    /// feedback loops (the PV103 circuit lint).
    fn capacity(&self) -> usize {
        0
    }

    /// Cycles between a token entering and leaving this component when
    /// nothing downstream stalls — its pipeline latency. Purely
    /// combinational elements forward within the cycle and report 0.
    ///
    /// Together with [`capacity`](Component::capacity) this describes the
    /// component as a stage of a timed marked graph: `capacity` tokens of
    /// elastic storage traversed in `latency` cycles. The PV4xx static
    /// throughput analysis derives its initiation-interval bounds from
    /// exactly these two numbers.
    fn latency(&self) -> u32 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Token;

    /// A minimal wire component used to exercise the trait contract.
    struct Wire {
        input: ChannelId,
        output: ChannelId,
    }

    impl Component for Wire {
        fn type_name(&self) -> &'static str {
            "wire"
        }
        fn ports(&self) -> Ports {
            Ports::new(vec![self.input], vec![self.output])
        }
        fn eval(&self, sig: &mut Signals) {
            if let Some(t) = sig.token(self.input) {
                sig.drive(self.output, t);
            }
            sig.accept_if(self.input, sig.is_ready(self.output));
        }
        fn commit(&mut self, _sig: &Signals) -> bool {
            false
        }
    }

    #[test]
    fn wire_component_forwards() {
        let a = ChannelId(0);
        let b = ChannelId(1);
        let w = Wire {
            input: a,
            output: b,
        };
        let mut sig = Signals::new(2);
        sig.drive(a, Token::new(9, 1));
        sig.accept(b);
        // Two sweeps reach the fixpoint for a single wire.
        w.eval(&mut sig);
        w.eval(&mut sig);
        assert!(sig.fired(a));
        assert!(sig.fired(b));
        assert_eq!(sig.taken(b), Some(Token::new(9, 1)));
        assert!(w.is_idle());
        assert_eq!(w.occupancy(), 0);
    }
}
