//! Sharded multi-simulation driver.
//!
//! A [`Netlist`](crate::Netlist) is deliberately not `Send` (components are
//! `Box<dyn Component>` sharing `Rc`-based squash buses), so simulations
//! cannot migrate between threads. Parameter sweeps don't need them to:
//! each *job description* (kernel name, config, seed — plain data) is
//! `Sync`, and every worker builds, runs, and tears down its own simulator
//! entirely inside one thread.
//!
//! [`run`] shards the job list across the available cores and returns the
//! results **in job order, bit-identical at any thread count**: each job's
//! result is written into its own slot, so neither scheduling nor
//! `RAYON_NUM_THREADS` can reorder or perturb the output. The per-job
//! closure must itself be deterministic for the overall guarantee to hold —
//! seed any randomness from the job description, never from wall-clock or
//! thread identity.
//!
//! ```
//! use prevv_dataflow::sweep;
//!
//! let depths = [4usize, 8, 16];
//! let cycles: Vec<usize> = sweep::run(&depths, |&d| d * 100 /* run a sim */);
//! assert_eq!(cycles, vec![400, 800, 1600]);
//! ```

use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

/// Runs `f` over every job, sharded across the default thread count
/// (`RAYON_NUM_THREADS` or all cores). Results are in job order.
pub fn run<J, R, F>(jobs: &[J], f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    jobs.par_iter().map(f).collect()
}

/// [`run`] with an explicit worker count — the hook the determinism tests
/// use to prove thread count cannot affect the output.
pub fn run_with_threads<J, R, F>(jobs: &[J], threads: usize, f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    let pool = ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    pool.install(|| jobs.par_iter().map(f).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{BinOp, BinaryAlu, Constant, Fork, IterSource, Sink};
    use crate::{Netlist, SimConfig, Simulator, SquashBus};

    /// A tiny but real simulation job: `n` iterations through an adder.
    fn run_adder(n: i64) -> (u64, Vec<i64>) {
        let mut net = Netlist::new();
        let bus = SquashBus::new();
        let src = net.channel();
        let f1 = net.channel();
        let f2 = net.channel();
        let one = net.channel();
        let sum = net.channel();
        let rows = (0..n).map(|i| vec![i]).collect();
        net.add("src", IterSource::new(rows, vec![src], bus.clone()));
        net.add("fork", Fork::new(src, vec![f1, f2]));
        net.add("one", Constant::new(1, f2, one));
        net.add("add", BinaryAlu::with_latency(BinOp::Add, 1, f1, one, sum));
        let (sink, store) = Sink::collecting(vec![sum]);
        net.add("sink", sink);
        let mut sim = Simulator::new(net, bus)
            .expect("valid")
            .with_config(SimConfig::default());
        let report = sim.run().expect("completes");
        let values = store.borrow().iter().map(|t| t.value).collect();
        (report.cycles, values)
    }

    #[test]
    fn results_are_in_job_order() {
        let jobs: Vec<i64> = vec![5, 1, 3, 8, 2];
        let got = run(&jobs, |&n| run_adder(n));
        for (job, (_, values)) in jobs.iter().zip(&got) {
            let expected: Vec<i64> = (0..*job).map(|i| i + 1).collect();
            assert_eq!(values, &expected);
        }
    }

    #[test]
    fn output_is_identical_at_any_thread_count() {
        let jobs: Vec<i64> = (1..20).collect();
        let reference = run_with_threads(&jobs, 1, |&n| run_adder(n));
        for threads in [2, 3, 7, 16] {
            let got = run_with_threads(&jobs, threads, |&n| run_adder(n));
            assert_eq!(got, reference, "thread count {threads}");
        }
    }
}
