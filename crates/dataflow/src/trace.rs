//! Cycle-by-cycle channel traces — the simulator's answer to a waveform
//! viewer.
//!
//! A [`TraceRecorder`] samples selected channels after every wire fixpoint
//! and stores the transfers it saw. Use it to debug stalls ("which channel
//! stopped firing first?") or to assert fine-grained timing properties in
//! tests. Rendering as ASCII art ([`ChannelTrace::render`]) gives a compact
//! `waveform`:
//!
//! ```text
//! ch3  ..T.T.T.T.....T
//! ```
//!
//! (`T` = transfer, `s` = stalled [valid but not ready], `.` = idle.)

use crate::signal::{ChannelId, Signals};
use crate::token::Token;

/// What one channel did in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelEvent {
    /// No token offered.
    Idle,
    /// A token was offered but the consumer was not ready.
    Stalled(Token),
    /// A token transferred.
    Fired(Token),
}

impl ChannelEvent {
    /// The glyph used by [`ChannelTrace::render`].
    pub fn glyph(&self) -> char {
        match self {
            ChannelEvent::Idle => '.',
            ChannelEvent::Stalled(_) => 's',
            ChannelEvent::Fired(_) => 'T',
        }
    }
}

/// The recorded history of one channel.
#[derive(Debug, Clone, Default)]
pub struct ChannelTrace {
    events: Vec<ChannelEvent>,
}

impl ChannelTrace {
    /// All events, one per sampled cycle.
    pub fn events(&self) -> &[ChannelEvent] {
        &self.events
    }

    /// The tokens that transferred, with the cycle index of each transfer.
    pub fn transfers(&self) -> impl Iterator<Item = (usize, Token)> + '_ {
        self.events.iter().enumerate().filter_map(|(i, e)| match e {
            ChannelEvent::Fired(t) => Some((i, *t)),
            _ => None,
        })
    }

    /// Number of transfers recorded.
    pub fn fired_count(&self) -> usize {
        self.transfers().count()
    }

    /// Number of stalled cycles recorded.
    pub fn stall_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, ChannelEvent::Stalled(_)))
            .count()
    }

    /// ASCII waveform of the channel's activity.
    pub fn render(&self) -> String {
        self.events.iter().map(ChannelEvent::glyph).collect()
    }
}

/// Samples a set of channels every cycle.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    channels: Vec<ChannelId>,
    traces: Vec<ChannelTrace>,
    cycles: usize,
}

impl TraceRecorder {
    /// Creates a recorder watching `channels`.
    pub fn new(channels: Vec<ChannelId>) -> Self {
        let traces = vec![ChannelTrace::default(); channels.len()];
        TraceRecorder {
            channels,
            traces,
            cycles: 0,
        }
    }

    /// Watched channels.
    pub fn channels(&self) -> &[ChannelId] {
        &self.channels
    }

    /// Cycles sampled so far.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Samples the wire state at the end of a cycle's fixpoint (called by
    /// the engine).
    pub fn sample(&mut self, sig: &Signals) {
        for (k, &ch) in self.channels.iter().enumerate() {
            let ev = if sig.fired(ch) {
                ChannelEvent::Fired(sig.token(ch).expect("fired implies token"))
            } else if sig.is_valid(ch) {
                ChannelEvent::Stalled(sig.token(ch).expect("valid implies token"))
            } else {
                ChannelEvent::Idle
            };
            self.traces[k].events.push(ev);
        }
        self.cycles += 1;
    }

    /// The trace of a watched channel (`None` if it was not watched).
    pub fn trace(&self, ch: ChannelId) -> Option<&ChannelTrace> {
        self.channels
            .iter()
            .position(|&c| c == ch)
            .map(|i| &self.traces[i])
    }

    /// Renders all traces as labeled waveforms.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, &ch) in self.channels.iter().enumerate() {
            out.push_str(&format!("{ch:>6}  {}\n", self.traces[k].render()));
        }
        out
    }
}

/// Renders a recorder's history as a Value Change Dump (IEEE 1364 VCD) —
/// loadable in GTKWave or any waveform viewer. Each watched channel becomes
/// three signals: `<ch>_valid`, `<ch>_ready` (1-bit, reconstructed from the
/// event classification) and `<ch>_data` (64-bit payload).
///
/// ```
/// use prevv_dataflow::trace::{to_vcd, TraceRecorder};
/// use prevv_dataflow::{ChannelId, Signals, Token};
///
/// let mut rec = TraceRecorder::new(vec![ChannelId::from_index(0)]);
/// let mut sig = Signals::new(1);
/// sig.drive(ChannelId::from_index(0), Token::new(5, 0));
/// sig.accept(ChannelId::from_index(0));
/// rec.sample(&sig);
/// let vcd = to_vcd(&rec, "prevv_sim");
/// assert!(vcd.contains("$var wire 64"));
/// assert!(vcd.contains("#0"));
/// ```
pub fn to_vcd(rec: &TraceRecorder, module: &str) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "$timescale 1ns $end");
    let _ = writeln!(out, "$scope module {module} $end");
    // VCD identifier codes: printable ASCII starting at '!'.
    let code = |k: usize, field: usize| -> String {
        let c = char::from(b'!' + (k as u8 % 90));
        format!("{c}{field}")
    };
    for (k, ch) in rec.channels().iter().enumerate() {
        let _ = writeln!(out, "$var wire 1 {} {ch}_valid $end", code(k, 0));
        let _ = writeln!(out, "$var wire 1 {} {ch}_ready $end", code(k, 1));
        let _ = writeln!(out, "$var wire 64 {} {ch}_data $end", code(k, 2));
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    let mut last: Vec<Option<ChannelEvent>> = vec![None; rec.channels().len()];
    for cycle in 0..rec.cycles() {
        let mut changes = String::new();
        for (k, &ch) in rec.channels().iter().enumerate() {
            let ev = rec.trace(ch).expect("watched").events()[cycle];
            if last[k] == Some(ev) {
                continue;
            }
            let (valid, ready, data) = match ev {
                ChannelEvent::Idle => (0, 0, None),
                ChannelEvent::Stalled(t) => (1, 0, Some(t.value)),
                ChannelEvent::Fired(t) => (1, 1, Some(t.value)),
            };
            let _ = writeln!(changes, "{valid}{}", code(k, 0));
            let _ = writeln!(changes, "{ready}{}", code(k, 1));
            if let Some(v) = data {
                let _ = writeln!(changes, "b{:b} {}", v as u64, code(k, 2));
            }
            last[k] = Some(ev);
        }
        if !changes.is_empty() {
            let _ = writeln!(out, "#{cycle}");
            out.push_str(&changes);
        }
    }
    let _ = writeln!(out, "#{}", rec.cycles());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Token;

    fn ch(i: u32) -> ChannelId {
        ChannelId::from_index(i as usize)
    }

    #[test]
    fn recorder_classifies_events() {
        let mut rec = TraceRecorder::new(vec![ch(0), ch(1)]);
        let mut sig = Signals::new(2);
        sig.drive(ch(0), Token::new(5, 0));
        sig.accept(ch(0));
        sig.drive(ch(1), Token::new(7, 0)); // stalled
        rec.sample(&sig);
        let mut sig = Signals::new(2);
        sig.drive(ch(1), Token::new(7, 0));
        sig.accept(ch(1));
        rec.sample(&sig);

        let t0 = rec.trace(ch(0)).expect("watched");
        assert_eq!(t0.render(), "T.");
        assert_eq!(t0.fired_count(), 1);
        let t1 = rec.trace(ch(1)).expect("watched");
        assert_eq!(t1.render(), "sT");
        assert_eq!(t1.stall_count(), 1);
        assert_eq!(
            t1.transfers().collect::<Vec<_>>(),
            vec![(1, Token::new(7, 0))]
        );
        assert_eq!(rec.cycles(), 2);
    }

    #[test]
    fn unwatched_channel_returns_none() {
        let rec = TraceRecorder::new(vec![ch(0)]);
        assert!(rec.trace(ch(9)).is_none());
    }

    #[test]
    fn vcd_export_tracks_value_changes() {
        let mut rec = TraceRecorder::new(vec![ChannelId::from_index(0)]);
        // Cycle 0: fired with 5; cycle 1: idle; cycle 2: stalled with 7.
        let mut sig = Signals::new(1);
        sig.drive(ChannelId::from_index(0), Token::new(5, 0));
        sig.accept(ChannelId::from_index(0));
        rec.sample(&sig);
        let sig = Signals::new(1);
        rec.sample(&sig);
        let mut sig = Signals::new(1);
        sig.drive(ChannelId::from_index(0), Token::new(7, 2));
        rec.sample(&sig);

        let vcd = to_vcd(&rec, "tb");
        assert!(vcd.contains("$scope module tb $end"));
        assert!(vcd.contains("ch0_valid"));
        assert!(vcd.contains("b101 "), "5 in binary at cycle 0: {vcd}");
        assert!(vcd.contains("b111 "), "7 in binary at cycle 2");
        // Three timestamps with changes plus the closing timestamp.
        assert_eq!(vcd.matches('#').count(), 4);
    }

    #[test]
    fn vcd_skips_cycles_without_changes() {
        let mut rec = TraceRecorder::new(vec![ChannelId::from_index(0)]);
        for _ in 0..5 {
            let sig = Signals::new(1);
            rec.sample(&sig);
        }
        let vcd = to_vcd(&rec, "tb");
        // Only the initial change (to idle) and the final timestamp.
        assert_eq!(vcd.matches('#').count(), 2, "{vcd}");
    }

    #[test]
    fn render_labels_rows() {
        let mut rec = TraceRecorder::new(vec![ch(2)]);
        let sig = Signals::new(3);
        rec.sample(&sig);
        let s = rec.render();
        assert!(s.contains("ch2"));
        assert!(s.trim_end().ends_with('.'));
    }
}
