//! The iteration source: the dataflow analogue of a loop nest's control
//! network.
//!
//! Dynamatic materializes each loop as a ring of control components; for
//! memory-disambiguation studies what matters is that one *iteration token
//! set* enters the pipeline per cycle (initiation interval 1 at the source)
//! in original program order, and that the source can be **rewound** when a
//! premature-value-validation squash replays iterations. `IterSource`
//! captures exactly that: it owns the precomputed iteration space (one row of
//! induction-variable values per flattened iteration) and emits each row on
//! its output channels, tagged with the flat iteration number and the current
//! squash epoch.

use crate::component::{Component, Ports};
use crate::signal::{ChannelId, Signals};
use crate::squash::SquashBus;
use crate::token::{Tag, Token, Value};

/// Emits one row of values per iteration, in program order, with rewind
/// support for squash replay.
#[derive(Debug)]
pub struct IterSource {
    rows: Vec<Vec<Value>>,
    outputs: Vec<ChannelId>,
    bus: SquashBus,
    pos: usize,
    sent: Vec<bool>,
    /// Iterations may only be issued while `pos < limit`; the engine uses
    /// this for throttling in experiments (not used by default).
    limit: usize,
}

impl IterSource {
    /// Creates a source that emits `rows[i][k]` on `outputs[k]` for each
    /// iteration `i`, tagged `iter = i`.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `outputs.len()`, or if
    /// `outputs` is empty.
    pub fn new(rows: Vec<Vec<Value>>, outputs: Vec<ChannelId>, bus: SquashBus) -> Self {
        assert!(!outputs.is_empty(), "iteration source needs outputs");
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                outputs.len(),
                "row {i} width must match output count"
            );
        }
        let n = outputs.len();
        let limit = rows.len();
        IterSource {
            rows,
            outputs,
            bus,
            pos: 0,
            sent: vec![false; n],
            limit,
        }
    }

    /// Total number of iterations this source will emit.
    pub fn iteration_count(&self) -> usize {
        self.rows.len()
    }

    /// The next iteration to be issued (monotone except across rewinds).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Has every iteration been fully issued?
    pub fn exhausted(&self) -> bool {
        self.pos >= self.limit
    }

    fn current_tag(&self) -> Tag {
        Tag::with_epoch(self.pos as u64, self.bus.epoch())
    }
}

impl Component for IterSource {
    fn type_name(&self) -> &'static str {
        "iter_source"
    }

    fn ports(&self) -> Ports {
        Ports::new(vec![], self.outputs.clone())
    }

    fn eval(&self, sig: &mut Signals) {
        if self.exhausted() {
            return;
        }
        let tag = self.current_tag();
        let row = &self.rows[self.pos];
        for (k, &out) in self.outputs.iter().enumerate() {
            if !self.sent[k] {
                sig.drive(out, Token::tagged(row[k], tag));
            }
        }
    }

    fn fire_driven_commit(&self) -> bool {
        true
    }

    fn commit(&mut self, sig: &Signals) -> bool {
        if self.exhausted() {
            return false;
        }
        let mut all = true;
        let mut changed = false;
        for (k, &out) in self.outputs.iter().enumerate() {
            if !self.sent[k] && sig.fired(out) {
                self.sent[k] = true;
                changed = true;
            }
            all &= self.sent[k];
        }
        if all {
            self.pos += 1;
            self.sent.iter_mut().for_each(|s| *s = false);
            changed = true;
        }
        changed
    }

    fn flush(&mut self, from_iter: u64) {
        let from = from_iter as usize;
        if self.pos >= from {
            self.pos = from;
            self.sent.iter_mut().for_each(|s| *s = false);
        }
    }

    fn is_idle(&self) -> bool {
        self.exhausted()
    }

    fn occupancy(&self) -> usize {
        usize::from(!self.exhausted())
    }
}

/// Builds the iteration-space rows for a (possibly triangular) loop nest.
///
/// Each level has an inclusive lower and exclusive upper bound; bounds may
/// reference outer induction variables (`Bound::OuterPlus`), which is how
/// triangular kernels (gaussian elimination, triangular matrix product)
/// express `for j in i+1..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// A compile-time constant bound.
    Const(Value),
    /// `outer[level] + offset`, referencing an enclosing loop's variable.
    OuterPlus(usize, Value),
}

impl Bound {
    fn resolve(self, outer: &[Value]) -> Value {
        match self {
            Bound::Const(c) => c,
            Bound::OuterPlus(level, off) => outer[level] + off,
        }
    }
}

/// One loop level: `for v in lo..hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopLevel {
    /// Inclusive lower bound.
    pub lo: Bound,
    /// Exclusive upper bound.
    pub hi: Bound,
}

impl LoopLevel {
    /// A rectangular level `0..n`.
    pub fn upto(n: Value) -> Self {
        LoopLevel {
            lo: Bound::Const(0),
            hi: Bound::Const(n),
        }
    }

    /// An explicit-bounds level.
    pub fn new(lo: Bound, hi: Bound) -> Self {
        LoopLevel { lo, hi }
    }
}

/// Enumerates the full iteration space of a loop nest in program order,
/// returning one row of induction-variable values per iteration.
///
/// ```
/// use prevv_dataflow::components::{iteration_space, Bound, LoopLevel};
///
/// // for i in 0..3 { for j in i+1..3 { ... } }  — a triangular nest
/// let space = iteration_space(&[
///     LoopLevel::upto(3),
///     LoopLevel::new(Bound::OuterPlus(0, 1), Bound::Const(3)),
/// ]);
/// assert_eq!(space, vec![vec![0, 1], vec![0, 2], vec![1, 2]]);
/// ```
pub fn iteration_space(levels: &[LoopLevel]) -> Vec<Vec<Value>> {
    let mut rows = Vec::new();
    let mut current: Vec<Value> = Vec::with_capacity(levels.len());
    fn recurse(
        levels: &[LoopLevel],
        depth: usize,
        current: &mut Vec<Value>,
        rows: &mut Vec<Vec<Value>>,
    ) {
        if depth == levels.len() {
            rows.push(current.clone());
            return;
        }
        let lo = levels[depth].lo.resolve(current);
        let hi = levels[depth].hi.resolve(current);
        let mut v = lo;
        while v < hi {
            current.push(v);
            recurse(levels, depth + 1, current, rows);
            current.pop();
            v += 1;
        }
    }
    recurse(levels, 0, &mut current, &mut rows);
    rows
}

/// Counts the iterations of a loop nest without materializing the rows.
///
/// For a rectangular nest (all bounds [`Bound::Const`]) this is a product of
/// extents and runs in O(levels), so static analyses can size 10^6+-iteration
/// spaces cheaply; triangular nests fall back to a recursive count that still
/// avoids allocating one `Vec` per iteration.
pub fn count_iterations(levels: &[LoopLevel]) -> usize {
    let rectangular = levels
        .iter()
        .all(|l| matches!((l.lo, l.hi), (Bound::Const(_), Bound::Const(_))));
    if rectangular {
        return levels
            .iter()
            .map(|l| {
                let (lo, hi) = (l.lo.resolve(&[]), l.hi.resolve(&[]));
                (hi - lo).max(0) as usize
            })
            .product();
    }
    fn recurse(levels: &[LoopLevel], depth: usize, current: &mut Vec<Value>) -> usize {
        if depth == levels.len() {
            return 1;
        }
        let lo = levels[depth].lo.resolve(current);
        let hi = levels[depth].hi.resolve(current);
        let mut total = 0;
        let mut v = lo;
        while v < hi {
            current.push(v);
            total += recurse(levels, depth + 1, current);
            current.pop();
            v += 1;
        }
        total
    }
    recurse(levels, 0, &mut Vec::with_capacity(levels.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch(i: u32) -> ChannelId {
        ChannelId(i)
    }

    fn one_cycle(src: &mut IterSource, ready: &[bool]) -> Vec<Option<Token>> {
        let mut s = Signals::new(ready.len());
        for (i, &r) in ready.iter().enumerate() {
            if r {
                s.accept(ch(i as u32));
            }
        }
        for _ in 0..4 {
            src.eval(&mut s);
            if !s.take_changed() {
                break;
            }
        }
        src.eval(&mut s);
        let outs = (0..ready.len()).map(|i| s.taken(ch(i as u32))).collect();
        src.commit(&s);
        outs
    }

    #[test]
    fn emits_rows_in_order() {
        let bus = SquashBus::new();
        let mut src = IterSource::new(vec![vec![10], vec![20], vec![30]], vec![ch(0)], bus);
        assert_eq!(src.iteration_count(), 3);
        let a = one_cycle(&mut src, &[true]);
        let b = one_cycle(&mut src, &[true]);
        assert_eq!(a[0], Some(Token::new(10, 0)));
        assert_eq!(b[0], Some(Token::new(20, 1)));
        assert!(!src.exhausted());
        one_cycle(&mut src, &[true]);
        assert!(src.exhausted());
        assert!(src.is_idle());
    }

    #[test]
    fn partial_acceptance_holds_iteration() {
        let bus = SquashBus::new();
        let mut src = IterSource::new(vec![vec![1, 2]], vec![ch(0), ch(1)], bus);
        let outs = one_cycle(&mut src, &[true, false]);
        assert_eq!(outs[0], Some(Token::new(1, 0)));
        assert_eq!(outs[1], None);
        assert_eq!(src.position(), 0, "iteration not complete yet");
        let outs = one_cycle(&mut src, &[false, true]);
        assert_eq!(outs[0], None, "already-sent output stays quiet");
        assert_eq!(outs[1], Some(Token::new(2, 0)));
        assert!(src.exhausted());
    }

    #[test]
    fn rewind_replays_with_new_epoch() {
        let bus = SquashBus::new();
        let mut src = IterSource::new((0..5).map(|i| vec![i]).collect(), vec![ch(0)], bus.clone());
        for _ in 0..4 {
            one_cycle(&mut src, &[true]);
        }
        assert_eq!(src.position(), 4);
        // A squash from iteration 2 rewinds the source...
        bus.post(2);
        bus.take_pending(|_| 0);
        src.flush(2);
        assert_eq!(src.position(), 2);
        // ...and re-issued tokens carry the bumped epoch.
        let outs = one_cycle(&mut src, &[true]);
        let t = outs[0].expect("re-issued token");
        assert_eq!(t.tag.iter, 2);
        assert_eq!(t.tag.epoch, 1);
    }

    #[test]
    fn rewind_beyond_position_is_noop() {
        let bus = SquashBus::new();
        let mut src = IterSource::new((0..5).map(|i| vec![i]).collect(), vec![ch(0)], bus);
        one_cycle(&mut src, &[true]);
        src.flush(4); // haven't got there yet
        assert_eq!(src.position(), 1);
    }

    #[test]
    fn triangular_iteration_space() {
        let space = iteration_space(&[
            LoopLevel::upto(4),
            LoopLevel::new(Bound::OuterPlus(0, 0), Bound::Const(4)),
        ]);
        // i in 0..4, j in i..4: 4+3+2+1 = 10 iterations
        assert_eq!(space.len(), 10);
        assert_eq!(space[0], vec![0, 0]);
        assert_eq!(space[9], vec![3, 3]);
    }

    #[test]
    fn rectangular_three_level_space() {
        let space = iteration_space(&[LoopLevel::upto(2), LoopLevel::upto(3), LoopLevel::upto(2)]);
        assert_eq!(space.len(), 12);
        assert_eq!(space[0], vec![0, 0, 0]);
        assert_eq!(space[11], vec![1, 2, 1]);
    }

    #[test]
    fn count_matches_materialized_space() {
        let nests: &[&[LoopLevel]] = &[
            &[LoopLevel::upto(4)],
            &[LoopLevel::upto(2), LoopLevel::upto(3), LoopLevel::upto(2)],
            &[
                LoopLevel::upto(4),
                LoopLevel::new(Bound::OuterPlus(0, 1), Bound::Const(4)),
            ],
            &[LoopLevel::upto(0), LoopLevel::upto(5)],
        ];
        for nest in nests {
            assert_eq!(count_iterations(nest), iteration_space(nest).len());
        }
    }

    #[test]
    fn count_handles_huge_rectangular_spaces() {
        let nest = [
            LoopLevel::upto(1_000),
            LoopLevel::upto(1_000),
            LoopLevel::upto(1_000),
        ];
        assert_eq!(count_iterations(&nest), 1_000_000_000);
    }

    #[test]
    fn empty_space_is_immediately_idle() {
        let bus = SquashBus::new();
        let src = IterSource::new(vec![], vec![ch(0)], bus);
        assert!(src.is_idle());
        assert_eq!(src.occupancy(), 0);
    }
}
