//! N-way routing components: [`ControlMerge`] and [`Demux`] — the last two
//! members of Dynamatic's standard component set, used when control flow
//! reconverges (φ-nodes) or fans out by computed index.

use crate::component::{Component, Ports};
use crate::signal::{ChannelId, Signals};

/// Control merge: like [`Merge`](crate::components::Merge), but additionally
/// emits *which* input won on a separate index output — the component
/// Dynamatic places at control-flow join points so downstream muxes can
/// select the matching data path.
///
/// Both outputs must fire for the input to be consumed; an internal `sent`
/// pair lets them fire in different cycles.
#[derive(Debug)]
pub struct ControlMerge {
    inputs: Vec<ChannelId>,
    output: ChannelId,
    index_out: ChannelId,
    /// (chosen input, data sent?, index sent?) for a partially delivered
    /// arbitration.
    in_flight: Option<(usize, bool, bool)>,
}

impl ControlMerge {
    /// Creates a control merge over `inputs`, forwarding the winning token
    /// on `output` and its input index on `index_out`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn new(inputs: Vec<ChannelId>, output: ChannelId, index_out: ChannelId) -> Self {
        assert!(!inputs.is_empty(), "control merge needs inputs");
        ControlMerge {
            inputs,
            output,
            index_out,
            in_flight: None,
        }
    }

    fn choose(&self, sig: &Signals) -> Option<usize> {
        match self.in_flight {
            Some((k, ..)) => Some(k),
            None => self.inputs.iter().position(|&ch| sig.is_valid(ch)),
        }
    }
}

impl Component for ControlMerge {
    fn type_name(&self) -> &'static str {
        "control_merge"
    }

    fn ports(&self) -> Ports {
        Ports::new(self.inputs.clone(), vec![self.output, self.index_out])
    }

    fn eval(&self, sig: &mut Signals) {
        let Some(k) = self.choose(sig) else { return };
        let Some(t) = sig.token(self.inputs[k]) else {
            return;
        };
        let (data_sent, index_sent) = match self.in_flight {
            Some((_, d, i)) => (d, i),
            None => (false, false),
        };
        if !data_sent {
            sig.drive(self.output, t);
        }
        if !index_sent {
            sig.drive(self.index_out, t.with_value(k as i64));
        }
        let data_done = data_sent || sig.is_ready(self.output);
        let index_done = index_sent || sig.is_ready(self.index_out);
        sig.accept_if(self.inputs[k], data_done && index_done);
    }

    fn fire_driven_commit(&self) -> bool {
        true
    }

    fn commit(&mut self, sig: &Signals) -> bool {
        let Some(k) = self.choose(sig) else {
            return false;
        };
        if sig.fired(self.inputs[k]) {
            return self.in_flight.take().is_some();
        }
        let (mut d, mut i) = match self.in_flight {
            Some((_, d, i)) => (d, i),
            None => (false, false),
        };
        d |= sig.fired(self.output);
        i |= sig.fired(self.index_out);
        if d || i {
            let next = Some((k, d, i));
            let changed = self.in_flight != next;
            self.in_flight = next;
            changed
        } else {
            false
        }
    }

    fn flush(&mut self, _from_iter: u64) {
        // Partial arbitration state refers to a token held upstream; if that
        // token is flushed the state must clear. Conservatively reset (the
        // upstream producer re-offers surviving tokens anyway).
        self.in_flight = None;
    }

    fn is_idle(&self) -> bool {
        self.in_flight.is_none()
    }
}

/// Demux: steers each input token to the output selected by an index token
/// (the N-way generalization of [`Branch`](crate::components::Branch)).
/// Out-of-range indices wrap modulo the output count.
#[derive(Debug)]
pub struct Demux {
    data: ChannelId,
    select: ChannelId,
    outputs: Vec<ChannelId>,
}

impl Demux {
    /// Creates a demux steering `data` by `select` across `outputs`.
    ///
    /// # Panics
    ///
    /// Panics if `outputs` is empty.
    pub fn new(data: ChannelId, select: ChannelId, outputs: Vec<ChannelId>) -> Self {
        assert!(!outputs.is_empty(), "demux needs outputs");
        Demux {
            data,
            select,
            outputs,
        }
    }
}

impl Component for Demux {
    fn type_name(&self) -> &'static str {
        "demux"
    }

    fn ports(&self) -> Ports {
        Ports::new(vec![self.data, self.select], self.outputs.clone())
    }

    fn eval(&self, sig: &mut Signals) {
        let (Some(t), Some(s)) = (sig.token(self.data), sig.token(self.select)) else {
            return;
        };
        let k = (s.value.rem_euclid(self.outputs.len() as i64)) as usize;
        let out = self.outputs[k];
        sig.drive(out, t);
        if sig.is_ready(out) {
            sig.accept(self.data);
            sig.accept(self.select);
        }
    }

    fn fire_driven_commit(&self) -> bool {
        true
    }

    fn commit(&mut self, _sig: &Signals) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Token;

    fn ch(i: u32) -> ChannelId {
        ChannelId::from_index(i as usize)
    }

    fn settle(c: &dyn Component, s: &mut Signals) {
        s.settle_with(8, |sig| c.eval(sig));
        c.eval(s);
    }

    #[test]
    fn control_merge_reports_the_winning_index() {
        let m = ControlMerge::new(vec![ch(0), ch(1)], ch(2), ch(3));
        let mut s = Signals::new(4);
        s.drive(ch(1), Token::new(9, 4));
        s.accept(ch(2));
        s.accept(ch(3));
        settle(&m, &mut s);
        assert_eq!(s.taken(ch(2)), Some(Token::new(9, 4)));
        assert_eq!(s.taken(ch(3)), Some(Token::new(1, 4)), "index of input 1");
        assert!(s.fired(ch(1)));
    }

    #[test]
    fn control_merge_waits_for_both_outputs() {
        let mut m = ControlMerge::new(vec![ch(0), ch(1)], ch(2), ch(3));
        // Cycle 1: only the data output is ready.
        let mut s = Signals::new(4);
        s.drive(ch(0), Token::new(7, 2));
        s.accept(ch(2));
        settle(&m, &mut s);
        assert!(s.fired(ch(2)));
        assert!(!s.fired(ch(0)), "input held until index is delivered");
        m.commit(&s);
        assert!(!m.is_idle());
        // Cycle 2: index output becomes ready; input consumed.
        let mut s = Signals::new(4);
        s.drive(ch(0), Token::new(7, 2));
        s.accept(ch(3));
        settle(&m, &mut s);
        assert!(!s.is_valid(ch(2)), "data already sent");
        assert!(s.fired(ch(3)));
        assert!(s.fired(ch(0)));
        m.commit(&s);
        assert!(m.is_idle());
    }

    #[test]
    fn control_merge_priority_is_stable_under_partial_delivery() {
        let mut m = ControlMerge::new(vec![ch(0), ch(1)], ch(2), ch(3));
        // Input 1 wins while input 0 is absent...
        let mut s = Signals::new(4);
        s.drive(ch(1), Token::new(9, 0));
        s.accept(ch(2));
        settle(&m, &mut s);
        m.commit(&s);
        // ...then input 0 appears; the merge must stay committed to input 1.
        let mut s = Signals::new(4);
        s.drive(ch(0), Token::new(5, 1));
        s.drive(ch(1), Token::new(9, 0));
        s.accept(ch(3));
        settle(&m, &mut s);
        assert_eq!(
            s.taken(ch(3)),
            Some(Token::new(1, 0)),
            "index still names input 1"
        );
        assert!(s.fired(ch(1)));
        assert!(!s.fired(ch(0)));
    }

    #[test]
    fn demux_steers_by_index() {
        let d = Demux::new(ch(0), ch(1), vec![ch(2), ch(3), ch(4)]);
        let mut s = Signals::new(5);
        s.drive(ch(0), Token::new(42, 0));
        s.drive(ch(1), Token::new(2, 0));
        s.accept(ch(4));
        settle(&d, &mut s);
        assert_eq!(s.taken(ch(4)), Some(Token::new(42, 0)));
        assert!(s.fired(ch(0)) && s.fired(ch(1)));
        assert!(!s.is_valid(ch(2)) && !s.is_valid(ch(3)));
    }

    #[test]
    fn demux_wraps_out_of_range_select() {
        let d = Demux::new(ch(0), ch(1), vec![ch(2), ch(3)]);
        let mut s = Signals::new(4);
        s.drive(ch(0), Token::new(1, 0));
        s.drive(ch(1), Token::new(5, 0)); // 5 % 2 = 1
        s.accept(ch(3));
        settle(&d, &mut s);
        assert_eq!(s.taken(ch(3)), Some(Token::new(1, 0)));
    }

    #[test]
    fn demux_backpressure_holds_both_inputs() {
        let d = Demux::new(ch(0), ch(1), vec![ch(2), ch(3)]);
        let mut s = Signals::new(4);
        s.drive(ch(0), Token::new(1, 0));
        s.drive(ch(1), Token::new(0, 0));
        settle(&d, &mut s);
        assert!(s.is_valid(ch(2)), "offered");
        assert!(!s.fired(ch(0)) && !s.fired(ch(1)), "not consumed");
    }
}
