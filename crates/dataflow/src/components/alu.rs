//! Pipelined arithmetic/logic units.
//!
//! An ALU joins its operand channels (all must be valid), computes, and
//! delivers the result `latency` cycles later through an internal shift
//! register that stalls under backpressure — the standard fully-pipelined
//! functional unit of a dataflow circuit.

use std::fmt;
use std::rc::Rc;

use crate::component::{Component, Ports};
use crate::signal::{ChannelId, Signals};
use crate::token::{Token, Value};

/// Binary operations supported by [`BinaryAlu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division (0 divisor yields 0, matching a hardware "don't care").
    Div,
    /// Remainder (0 divisor yields 0).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (shift amount masked to 0..64).
    Shl,
    /// Arithmetic right shift (shift amount masked to 0..64).
    Shr,
    /// Equality comparison (1/0).
    Eq,
    /// Inequality comparison (1/0).
    Ne,
    /// Signed less-than (1/0).
    Lt,
    /// Signed less-or-equal (1/0).
    Le,
    /// Signed greater-than (1/0).
    Gt,
    /// Signed greater-or-equal (1/0).
    Ge,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl BinOp {
    /// Applies the operation.
    pub fn apply(self, a: Value, b: Value) -> Value {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
            BinOp::Eq => (a == b) as Value,
            BinOp::Ne => (a != b) as Value,
            BinOp::Lt => (a < b) as Value,
            BinOp::Le => (a <= b) as Value,
            BinOp::Gt => (a > b) as Value,
            BinOp::Ge => (a >= b) as Value,
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        }
    }

    /// Default pipeline latency for this operation in a Kintex-7-class
    /// dataflow circuit (combinational ops register once; multipliers and
    /// dividers are deeply pipelined).
    pub fn default_latency(self) -> u32 {
        match self {
            BinOp::Mul => 4,
            BinOp::Div | BinOp::Rem => 8,
            _ => 1,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Eq => "eq",
            BinOp::Ne => "ne",
            BinOp::Lt => "lt",
            BinOp::Le => "le",
            BinOp::Gt => "gt",
            BinOp::Ge => "ge",
            BinOp::Min => "min",
            BinOp::Max => "max",
        };
        f.write_str(s)
    }
}

/// Unary operations supported by [`UnaryAlu`].
#[derive(Clone)]
#[non_exhaustive]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise not.
    Not,
    /// Pass-through (useful as a registered stage).
    Identity,
    /// An opaque runtime function — the `f(x)` / `g(x)` of the paper's
    /// Fig. 2(b), whose value is only known at runtime.
    Opaque(Rc<dyn Fn(Value) -> Value>),
}

impl UnOp {
    /// Applies the operation.
    pub fn apply(&self, a: Value) -> Value {
        match self {
            UnOp::Neg => a.wrapping_neg(),
            UnOp::Not => !a,
            UnOp::Identity => a,
            UnOp::Opaque(f) => f(a),
        }
    }
}

impl fmt::Debug for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => f.write_str("Neg"),
            UnOp::Not => f.write_str("Not"),
            UnOp::Identity => f.write_str("Identity"),
            UnOp::Opaque(_) => f.write_str("Opaque(..)"),
        }
    }
}

/// Shared pipeline implementation: a shift register of optional tokens that
/// advances whenever the head slot is free or drained.
#[derive(Debug)]
struct Pipeline {
    stages: Vec<Option<Token>>,
}

impl Pipeline {
    fn new(latency: u32) -> Self {
        assert!(latency >= 1, "alu latency must be at least 1 cycle");
        Pipeline {
            stages: vec![None; latency as usize],
        }
    }

    fn head(&self) -> Option<Token> {
        *self.stages.last().expect("latency >= 1")
    }

    /// Number of pipeline slots (the configured latency).
    fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Will the register shift this cycle, given whether the head drains?
    fn will_shift(&self, head_drains: bool) -> bool {
        self.head().is_none() || head_drains
    }

    /// Is the entry slot free this cycle, given whether the head drains?
    fn entry_free(&self, head_drains: bool) -> bool {
        self.stages[0].is_none() || self.will_shift(head_drains)
    }

    /// Returns `true` when any stage content actually changed — a shift of an
    /// all-empty register is a no-op and must not count, or an idle ALU would
    /// look permanently busy to the event scheduler and watchdog.
    fn advance(&mut self, head_drained: bool, entering: Option<Token>) -> bool {
        let before = self.stages.clone();
        if self.will_shift(head_drained) {
            for i in (1..self.stages.len()).rev() {
                self.stages[i] = self.stages[i - 1];
            }
            self.stages[0] = None;
        } else if head_drained {
            *self.stages.last_mut().expect("latency >= 1") = None;
        }
        if let Some(t) = entering {
            debug_assert!(self.stages[0].is_none(), "entry slot must be free");
            self.stages[0] = Some(t);
        }
        self.stages != before
    }

    fn flush(&mut self, from_iter: u64) {
        for s in &mut self.stages {
            if s.is_some_and(|t| t.tag.iter >= from_iter) {
                *s = None;
            }
        }
    }

    fn occupancy(&self) -> usize {
        self.stages.iter().filter(|s| s.is_some()).count()
    }
}

/// A pipelined two-operand functional unit.
#[derive(Debug)]
pub struct BinaryAlu {
    op: BinOp,
    lhs: ChannelId,
    rhs: ChannelId,
    output: ChannelId,
    pipe: Pipeline,
}

impl BinaryAlu {
    /// Creates a unit with the operation's default latency.
    pub fn new(op: BinOp, lhs: ChannelId, rhs: ChannelId, output: ChannelId) -> Self {
        Self::with_latency(op, op.default_latency(), lhs, rhs, output)
    }

    /// Creates a unit with an explicit pipeline latency (>= 1).
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero.
    pub fn with_latency(
        op: BinOp,
        latency: u32,
        lhs: ChannelId,
        rhs: ChannelId,
        output: ChannelId,
    ) -> Self {
        BinaryAlu {
            op,
            lhs,
            rhs,
            output,
            pipe: Pipeline::new(latency),
        }
    }

    /// The operation computed by this unit.
    pub fn op(&self) -> BinOp {
        self.op
    }
}

impl Component for BinaryAlu {
    fn type_name(&self) -> &'static str {
        match self.op {
            BinOp::Mul => "binary_alu_mul",
            BinOp::Div | BinOp::Rem => "binary_alu_div",
            _ => "binary_alu",
        }
    }

    fn ports(&self) -> Ports {
        Ports::new(vec![self.lhs, self.rhs], vec![self.output])
    }

    fn eval(&self, sig: &mut Signals) {
        if let Some(head) = self.pipe.head() {
            sig.drive(self.output, head);
        }
        let head_drains = self.pipe.head().is_some() && sig.is_ready(self.output);
        let both = sig.is_valid(self.lhs) && sig.is_valid(self.rhs);
        if both && self.pipe.entry_free(head_drains) {
            sig.accept(self.lhs);
            sig.accept(self.rhs);
        }
    }

    fn fire_driven_commit(&self) -> bool {
        true
    }

    fn commit(&mut self, sig: &Signals) -> bool {
        let head_drained = sig.fired(self.output);
        let entering = match (sig.taken(self.lhs), sig.taken(self.rhs)) {
            (Some(a), Some(b)) => {
                debug_assert_eq!(
                    a.tag.iter, b.tag.iter,
                    "alu operands must come from the same iteration"
                );
                Some(Token::tagged(self.op.apply(a.value, b.value), a.tag))
            }
            (None, None) => None,
            _ => unreachable!("alu accepts operands jointly"),
        };
        self.pipe.advance(head_drained, entering)
    }

    fn flush(&mut self, from_iter: u64) {
        self.pipe.flush(from_iter);
    }

    fn is_idle(&self) -> bool {
        self.pipe.occupancy() == 0
    }

    fn occupancy(&self) -> usize {
        self.pipe.occupancy()
    }

    fn capacity(&self) -> usize {
        self.pipe.depth()
    }

    fn latency(&self) -> u32 {
        self.pipe.depth() as u32
    }
}

/// A pipelined one-operand functional unit.
#[derive(Debug)]
pub struct UnaryAlu {
    op: UnOp,
    input: ChannelId,
    output: ChannelId,
    pipe: Pipeline,
}

impl UnaryAlu {
    /// Creates a unit with a 1-cycle latency.
    pub fn new(op: UnOp, input: ChannelId, output: ChannelId) -> Self {
        Self::with_latency(op, 1, input, output)
    }

    /// Creates a unit with an explicit pipeline latency (>= 1).
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero.
    pub fn with_latency(op: UnOp, latency: u32, input: ChannelId, output: ChannelId) -> Self {
        UnaryAlu {
            op,
            input,
            output,
            pipe: Pipeline::new(latency),
        }
    }
}

impl Component for UnaryAlu {
    fn type_name(&self) -> &'static str {
        "unary_alu"
    }

    fn ports(&self) -> Ports {
        Ports::new(vec![self.input], vec![self.output])
    }

    fn eval(&self, sig: &mut Signals) {
        if let Some(head) = self.pipe.head() {
            sig.drive(self.output, head);
        }
        let head_drains = self.pipe.head().is_some() && sig.is_ready(self.output);
        if sig.is_valid(self.input) && self.pipe.entry_free(head_drains) {
            sig.accept(self.input);
        }
    }

    fn fire_driven_commit(&self) -> bool {
        true
    }

    fn commit(&mut self, sig: &Signals) -> bool {
        let head_drained = sig.fired(self.output);
        let entering = sig
            .taken(self.input)
            .map(|t| t.with_value(self.op.apply(t.value)));
        self.pipe.advance(head_drained, entering)
    }

    fn flush(&mut self, from_iter: u64) {
        self.pipe.flush(from_iter);
    }

    fn is_idle(&self) -> bool {
        self.pipe.occupancy() == 0
    }

    fn occupancy(&self) -> usize {
        self.pipe.occupancy()
    }

    fn capacity(&self) -> usize {
        self.pipe.depth()
    }

    fn latency(&self) -> u32 {
        self.pipe.depth() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch(i: u32) -> ChannelId {
        ChannelId(i)
    }

    fn run_cycle(
        alu: &mut BinaryAlu,
        a: Option<Token>,
        b: Option<Token>,
        out_ready: bool,
    ) -> (bool, Option<Token>) {
        let mut s = Signals::new(4);
        if let Some(t) = a {
            s.drive(ch(0), t);
        }
        if let Some(t) = b {
            s.drive(ch(1), t);
        }
        if out_ready {
            s.accept(ch(2));
        }
        for _ in 0..4 {
            alu.eval(&mut s);
            if !s.take_changed() {
                break;
            }
        }
        alu.eval(&mut s);
        let accepted = s.fired(ch(0));
        let out = s.taken(ch(2));
        alu.commit(&s);
        (accepted, out)
    }

    #[test]
    fn binop_semantics() {
        assert_eq!(BinOp::Add.apply(3, 4), 7);
        assert_eq!(BinOp::Sub.apply(3, 4), -1);
        assert_eq!(BinOp::Mul.apply(3, 4), 12);
        assert_eq!(BinOp::Div.apply(12, 4), 3);
        assert_eq!(BinOp::Div.apply(12, 0), 0, "division by zero is benign");
        assert_eq!(BinOp::Rem.apply(13, 4), 1);
        assert_eq!(BinOp::Lt.apply(1, 2), 1);
        assert_eq!(BinOp::Ge.apply(1, 2), 0);
        assert_eq!(BinOp::Min.apply(5, -2), -2);
        assert_eq!(BinOp::Max.apply(5, -2), 5);
        assert_eq!(BinOp::Shl.apply(1, 4), 16);
    }

    #[test]
    fn single_cycle_alu_produces_next_cycle() {
        let mut alu = BinaryAlu::with_latency(BinOp::Add, 1, ch(0), ch(1), ch(2));
        let (acc, out) = run_cycle(
            &mut alu,
            Some(Token::new(2, 0)),
            Some(Token::new(3, 0)),
            true,
        );
        assert!(acc);
        assert_eq!(out, None);
        let (_, out) = run_cycle(&mut alu, None, None, true);
        assert_eq!(out, Some(Token::new(5, 0)));
        assert!(alu.is_idle());
    }

    #[test]
    fn multi_cycle_latency_is_respected() {
        let mut alu = BinaryAlu::with_latency(BinOp::Mul, 3, ch(0), ch(1), ch(2));
        let (acc, _) = run_cycle(
            &mut alu,
            Some(Token::new(2, 0)),
            Some(Token::new(3, 0)),
            true,
        );
        assert!(acc);
        let (_, o1) = run_cycle(&mut alu, None, None, true);
        let (_, o2) = run_cycle(&mut alu, None, None, true);
        let (_, o3) = run_cycle(&mut alu, None, None, true);
        assert_eq!(o1, None);
        assert_eq!(o2, None);
        assert_eq!(o3, Some(Token::new(6, 0)));
    }

    #[test]
    fn pipeline_sustains_initiation_interval_one() {
        let mut alu = BinaryAlu::with_latency(BinOp::Add, 2, ch(0), ch(1), ch(2));
        let mut outs = Vec::new();
        for i in 0..6i64 {
            let (acc, out) = run_cycle(
                &mut alu,
                Some(Token::new(i, i as u64)),
                Some(Token::new(1, i as u64)),
                true,
            );
            assert!(acc, "pipelined alu accepts every cycle");
            outs.extend(out);
        }
        for _ in 0..2 {
            let (_, out) = run_cycle(&mut alu, None, None, true);
            outs.extend(out);
        }
        let values: Vec<i64> = outs.iter().map(|t| t.value).collect();
        assert_eq!(values, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn backpressure_stalls_pipeline() {
        let mut alu = BinaryAlu::with_latency(BinOp::Add, 1, ch(0), ch(1), ch(2));
        run_cycle(
            &mut alu,
            Some(Token::new(1, 0)),
            Some(Token::new(1, 0)),
            false,
        );
        // Head is full and output is not ready: the unit must refuse input.
        let (acc, out) = run_cycle(
            &mut alu,
            Some(Token::new(2, 1)),
            Some(Token::new(2, 1)),
            false,
        );
        assert!(!acc);
        assert_eq!(out, None);
        assert_eq!(alu.occupancy(), 1);
    }

    #[test]
    fn flush_clears_squashed_iterations() {
        let mut alu = BinaryAlu::with_latency(BinOp::Add, 3, ch(0), ch(1), ch(2));
        run_cycle(
            &mut alu,
            Some(Token::new(1, 3)),
            Some(Token::new(1, 3)),
            false,
        );
        run_cycle(
            &mut alu,
            Some(Token::new(1, 7)),
            Some(Token::new(1, 7)),
            false,
        );
        assert_eq!(alu.occupancy(), 2);
        alu.flush(5);
        assert_eq!(alu.occupancy(), 1, "iteration 7 flushed, 3 kept");
    }

    #[test]
    fn unary_opaque_function() {
        let f = Rc::new(|x: Value| (x * 7) % 5);
        let mut alu = UnaryAlu::new(UnOp::Opaque(f), ch(0), ch(1));
        let mut s = Signals::new(2);
        s.drive(ch(0), Token::new(4, 0));
        s.accept(ch(1));
        alu.eval(&mut s);
        alu.eval(&mut s);
        assert!(s.fired(ch(0)));
        alu.commit(&s);
        let mut s = Signals::new(2);
        s.accept(ch(1));
        alu.eval(&mut s);
        alu.eval(&mut s);
        assert_eq!(s.taken(ch(1)), Some(Token::new(3, 0)));
    }
}
