//! The standard elastic component library.
//!
//! These are the dataflow building blocks of a dynamically scheduled HLS
//! circuit (Dynamatic's component set): token routing ([`Fork`], [`Join`],
//! [`Merge`], [`Mux`], [`Branch`]), storage ([`Buffer`]), computation
//! ([`BinaryAlu`], [`UnaryAlu`], [`Constant`]), loop control
//! ([`IterSource`]), and termination ([`Sink`]). Memory access ports and
//! disambiguation controllers (LSQ, PreVV) live in the `prevv-mem` and
//! `prevv-core` crates and implement the same [`Component`] trait.
//!
//! [`Component`]: crate::Component

mod alu;
mod basic;
mod buffer;
mod routing;
mod source;

pub use alu::{BinOp, BinaryAlu, UnOp, UnaryAlu};
pub use basic::{Branch, Constant, Fork, Join, Merge, Mux, Sink};
pub use buffer::Buffer;
pub use routing::{ControlMerge, Demux};
pub use source::{count_iterations, iteration_space, Bound, IterSource, LoopLevel};
