//! Stateless / near-stateless elastic components: constant, sink, fork,
//! join, merge, mux, branch.

use std::cell::RefCell;
use std::rc::Rc;

use crate::component::{Component, Ports};
use crate::signal::{ChannelId, Signals};
use crate::token::{Token, Value};

/// Emits a fixed value each time a trigger token arrives, inheriting the
/// trigger's tag. The dataflow analogue of a literal in the source program.
#[derive(Debug)]
pub struct Constant {
    value: Value,
    trigger: ChannelId,
    output: ChannelId,
}

impl Constant {
    /// Creates a constant driven by `trigger`, producing on `output`.
    pub fn new(value: Value, trigger: ChannelId, output: ChannelId) -> Self {
        Constant {
            value,
            trigger,
            output,
        }
    }
}

impl Component for Constant {
    fn type_name(&self) -> &'static str {
        "constant"
    }

    fn ports(&self) -> Ports {
        Ports::new(vec![self.trigger], vec![self.output])
    }

    fn eval(&self, sig: &mut Signals) {
        if let Some(t) = sig.token(self.trigger) {
            sig.drive(self.output, t.with_value(self.value));
        }
        sig.accept_if(self.trigger, sig.is_ready(self.output));
    }

    fn fire_driven_commit(&self) -> bool {
        true
    }

    fn commit(&mut self, _sig: &Signals) -> bool {
        false
    }
}

/// Consumes and discards tokens on any number of channels; optionally
/// records them for inspection by tests and examples.
#[derive(Debug, Default)]
pub struct Sink {
    inputs: Vec<ChannelId>,
    collected: Option<Rc<RefCell<Vec<Token>>>>,
}

impl Sink {
    /// A sink that silently discards tokens.
    pub fn new(inputs: Vec<ChannelId>) -> Self {
        Sink {
            inputs,
            collected: None,
        }
    }

    /// A sink that records every consumed token. The returned handle can be
    /// read after the simulation finishes.
    pub fn collecting(inputs: Vec<ChannelId>) -> (Self, Rc<RefCell<Vec<Token>>>) {
        let store = Rc::new(RefCell::new(Vec::new()));
        (
            Sink {
                inputs,
                collected: Some(store.clone()),
            },
            store,
        )
    }
}

impl Component for Sink {
    fn type_name(&self) -> &'static str {
        "sink"
    }

    fn ports(&self) -> Ports {
        Ports::new(self.inputs.clone(), vec![])
    }

    fn eval(&self, sig: &mut Signals) {
        for &ch in &self.inputs {
            sig.accept(ch);
        }
    }

    fn fire_driven_commit(&self) -> bool {
        true
    }

    fn commit(&mut self, sig: &Signals) -> bool {
        if let Some(store) = &self.collected {
            for &ch in &self.inputs {
                if let Some(t) = sig.taken(ch) {
                    store.borrow_mut().push(t);
                }
            }
        }
        // Collection is external bookkeeping, not eval-visible state.
        false
    }
}

/// Eager fork: replicates each input token onto every output, letting fast
/// consumers proceed while slow ones lag (per-output `sent` bits), and only
/// consuming the input once every output has taken its copy.
#[derive(Debug)]
pub struct Fork {
    input: ChannelId,
    outputs: Vec<ChannelId>,
    sent: Vec<bool>,
    /// Iteration of the token currently being distributed, if a partial
    /// send is in flight — needed so a squash can reset the right state.
    in_flight_iter: Option<u64>,
}

impl Fork {
    /// Creates a fork from `input` to `outputs`.
    ///
    /// # Panics
    ///
    /// Panics if `outputs` is empty.
    pub fn new(input: ChannelId, outputs: Vec<ChannelId>) -> Self {
        assert!(!outputs.is_empty(), "fork needs at least one output");
        let n = outputs.len();
        Fork {
            input,
            outputs,
            sent: vec![false; n],
            in_flight_iter: None,
        }
    }
}

impl Component for Fork {
    fn type_name(&self) -> &'static str {
        "fork"
    }

    fn ports(&self) -> Ports {
        Ports::new(vec![self.input], self.outputs.clone())
    }

    fn eval(&self, sig: &mut Signals) {
        let Some(t) = sig.token(self.input) else {
            return;
        };
        let mut all_done = true;
        for (k, &out) in self.outputs.iter().enumerate() {
            if !self.sent[k] {
                sig.drive(out, t);
                if !sig.is_ready(out) {
                    all_done = false;
                }
            }
        }
        sig.accept_if(self.input, all_done);
    }

    fn fire_driven_commit(&self) -> bool {
        true
    }

    fn commit(&mut self, sig: &Signals) -> bool {
        if sig.fired(self.input) {
            // All copies delivered this cycle; state resets for the next token.
            let changed = self.sent.iter().any(|&s| s) || self.in_flight_iter.is_some();
            self.sent.iter_mut().for_each(|s| *s = false);
            self.in_flight_iter = None;
            return changed;
        }
        let mut changed = false;
        for (k, &out) in self.outputs.iter().enumerate() {
            if !self.sent[k] {
                if let Some(t) = sig.taken(out) {
                    self.sent[k] = true;
                    self.in_flight_iter = Some(t.tag.iter);
                    changed = true;
                }
            }
        }
        changed
    }

    fn flush(&mut self, from_iter: u64) {
        if self.in_flight_iter.is_some_and(|i| i >= from_iter) {
            self.sent.iter_mut().for_each(|s| *s = false);
            self.in_flight_iter = None;
        }
    }

    fn is_idle(&self) -> bool {
        self.in_flight_iter.is_none()
    }
}

/// Join: waits for a token on every input, then emits the token of input 0
/// (the others act as synchronization). Used for control synchronization and
/// gating a value on the arrival of a side condition.
#[derive(Debug)]
pub struct Join {
    inputs: Vec<ChannelId>,
    output: ChannelId,
}

impl Join {
    /// Creates a join over `inputs` forwarding input 0's token to `output`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn new(inputs: Vec<ChannelId>, output: ChannelId) -> Self {
        assert!(!inputs.is_empty(), "join needs at least one input");
        Join { inputs, output }
    }
}

impl Component for Join {
    fn type_name(&self) -> &'static str {
        "join"
    }

    fn ports(&self) -> Ports {
        Ports::new(self.inputs.clone(), vec![self.output])
    }

    fn eval(&self, sig: &mut Signals) {
        if !self.inputs.iter().all(|&ch| sig.is_valid(ch)) {
            return;
        }
        let t = sig.token(self.inputs[0]).expect("valid implies token");
        sig.drive(self.output, t);
        if sig.is_ready(self.output) {
            for &ch in &self.inputs {
                sig.accept(ch);
            }
        }
    }

    fn fire_driven_commit(&self) -> bool {
        true
    }

    fn commit(&mut self, _sig: &Signals) -> bool {
        false
    }
}

/// Priority merge: forwards a token from the lowest-indexed valid input.
/// Inputs should come from elastic buffers so arbitration is stable within a
/// cycle.
#[derive(Debug)]
pub struct Merge {
    inputs: Vec<ChannelId>,
    output: ChannelId,
}

impl Merge {
    /// Creates a merge over `inputs` producing on `output`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn new(inputs: Vec<ChannelId>, output: ChannelId) -> Self {
        assert!(!inputs.is_empty(), "merge needs at least one input");
        Merge { inputs, output }
    }
}

impl Component for Merge {
    fn type_name(&self) -> &'static str {
        "merge"
    }

    fn ports(&self) -> Ports {
        Ports::new(self.inputs.clone(), vec![self.output])
    }

    fn eval(&self, sig: &mut Signals) {
        let Some(&chosen) = self.inputs.iter().find(|&&ch| sig.is_valid(ch)) else {
            return;
        };
        let t = sig.token(chosen).expect("valid implies token");
        sig.drive(self.output, t);
        sig.accept_if(chosen, sig.is_ready(self.output));
    }

    fn fire_driven_commit(&self) -> bool {
        true
    }

    fn commit(&mut self, _sig: &Signals) -> bool {
        false
    }
}

/// Mux: a select token (0 or nonzero) steers which of two data inputs is
/// forwarded; the other input is left untouched.
#[derive(Debug)]
pub struct Mux {
    select: ChannelId,
    if_false: ChannelId,
    if_true: ChannelId,
    output: ChannelId,
}

impl Mux {
    /// Creates a mux: `select == 0` forwards `if_false`, otherwise `if_true`.
    pub fn new(
        select: ChannelId,
        if_false: ChannelId,
        if_true: ChannelId,
        output: ChannelId,
    ) -> Self {
        Mux {
            select,
            if_false,
            if_true,
            output,
        }
    }
}

impl Component for Mux {
    fn type_name(&self) -> &'static str {
        "mux"
    }

    fn ports(&self) -> Ports {
        Ports::new(
            vec![self.select, self.if_false, self.if_true],
            vec![self.output],
        )
    }

    fn eval(&self, sig: &mut Signals) {
        let Some(sel) = sig.token(self.select) else {
            return;
        };
        let chosen = if sel.value != 0 {
            self.if_true
        } else {
            self.if_false
        };
        let Some(t) = sig.token(chosen) else {
            return;
        };
        sig.drive(self.output, t);
        if sig.is_ready(self.output) {
            sig.accept(self.select);
            sig.accept(chosen);
        }
    }

    fn fire_driven_commit(&self) -> bool {
        true
    }

    fn commit(&mut self, _sig: &Signals) -> bool {
        false
    }
}

/// Branch: a condition token steers the data token to the true or false
/// output. The dataflow analogue of an `if`.
#[derive(Debug)]
pub struct Branch {
    data: ChannelId,
    condition: ChannelId,
    if_true: ChannelId,
    if_false: ChannelId,
}

impl Branch {
    /// Creates a branch steering `data` by `condition` (nonzero = true).
    pub fn new(
        data: ChannelId,
        condition: ChannelId,
        if_true: ChannelId,
        if_false: ChannelId,
    ) -> Self {
        Branch {
            data,
            condition,
            if_true,
            if_false,
        }
    }
}

impl Component for Branch {
    fn type_name(&self) -> &'static str {
        "branch"
    }

    fn ports(&self) -> Ports {
        Ports::new(
            vec![self.data, self.condition],
            vec![self.if_true, self.if_false],
        )
    }

    fn eval(&self, sig: &mut Signals) {
        let (Some(t), Some(c)) = (sig.token(self.data), sig.token(self.condition)) else {
            return;
        };
        let out = if c.value != 0 {
            self.if_true
        } else {
            self.if_false
        };
        sig.drive(out, t);
        if sig.is_ready(out) {
            sig.accept(self.data);
            sig.accept(self.condition);
        }
    }

    fn fire_driven_commit(&self) -> bool {
        true
    }

    fn commit(&mut self, _sig: &Signals) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tag;

    fn sig(n: usize) -> Signals {
        Signals::new(n)
    }

    fn settle(c: &dyn Component, s: &mut Signals) {
        for _ in 0..8 {
            c.eval(s);
            if !s.take_changed() {
                break;
            }
        }
        // one final sweep so late-raised readiness is observed
        c.eval(s);
    }

    #[test]
    fn constant_inherits_trigger_tag() {
        let c = Constant::new(42, ChannelId(0), ChannelId(1));
        let mut s = sig(2);
        s.drive(ChannelId(0), Token::tagged(0, Tag::with_epoch(3, 1)));
        s.accept(ChannelId(1));
        settle(&c, &mut s);
        assert_eq!(
            s.taken(ChannelId(1)),
            Some(Token::tagged(42, Tag::with_epoch(3, 1)))
        );
        assert!(s.fired(ChannelId(0)));
    }

    #[test]
    fn fork_waits_for_slowest_consumer() {
        let mut f = Fork::new(ChannelId(0), vec![ChannelId(1), ChannelId(2)]);
        // Cycle 1: only output 1 is ready.
        let mut s = sig(3);
        s.drive(ChannelId(0), Token::new(7, 0));
        s.accept(ChannelId(1));
        settle(&f, &mut s);
        assert!(s.fired(ChannelId(1)));
        assert!(!s.fired(ChannelId(2)));
        assert!(!s.fired(ChannelId(0)), "input not consumed yet");
        f.commit(&s);
        assert!(!f.is_idle());

        // Cycle 2: output 2 becomes ready; input is consumed.
        let mut s = sig(3);
        s.drive(ChannelId(0), Token::new(7, 0));
        s.accept(ChannelId(2));
        settle(&f, &mut s);
        assert!(!s.is_valid(ChannelId(1)), "already-sent branch stays quiet");
        assert!(s.fired(ChannelId(2)));
        assert!(s.fired(ChannelId(0)));
        f.commit(&s);
        assert!(f.is_idle());
    }

    #[test]
    fn fork_flush_resets_partial_send() {
        let mut f = Fork::new(ChannelId(0), vec![ChannelId(1), ChannelId(2)]);
        let mut s = sig(3);
        s.drive(ChannelId(0), Token::new(7, 9));
        s.accept(ChannelId(1));
        settle(&f, &mut s);
        f.commit(&s);
        assert!(!f.is_idle());
        f.flush(5); // iteration 9 >= 5: partial send is discarded
        assert!(f.is_idle());
    }

    #[test]
    fn join_requires_all_inputs() {
        let j = Join::new(vec![ChannelId(0), ChannelId(1)], ChannelId(2));
        let mut s = sig(3);
        s.drive(ChannelId(0), Token::new(1, 0));
        s.accept(ChannelId(2));
        settle(&j, &mut s);
        assert!(!s.is_valid(ChannelId(2)));
        s.drive(ChannelId(1), Token::new(2, 0));
        settle(&j, &mut s);
        assert_eq!(s.taken(ChannelId(2)), Some(Token::new(1, 0)));
        assert!(s.fired(ChannelId(0)) && s.fired(ChannelId(1)));
    }

    #[test]
    fn merge_prefers_lowest_index() {
        let m = Merge::new(vec![ChannelId(0), ChannelId(1)], ChannelId(2));
        let mut s = sig(3);
        s.drive(ChannelId(0), Token::new(10, 0));
        s.drive(ChannelId(1), Token::new(20, 0));
        s.accept(ChannelId(2));
        settle(&m, &mut s);
        assert_eq!(s.taken(ChannelId(2)), Some(Token::new(10, 0)));
        assert!(s.fired(ChannelId(0)));
        assert!(!s.fired(ChannelId(1)), "losing input is not consumed");
    }

    #[test]
    fn branch_steers_by_condition() {
        let b = Branch::new(ChannelId(0), ChannelId(1), ChannelId(2), ChannelId(3));
        let mut s = sig(4);
        s.drive(ChannelId(0), Token::new(5, 0));
        s.drive(ChannelId(1), Token::new(0, 0)); // false
        s.accept(ChannelId(2));
        s.accept(ChannelId(3));
        settle(&b, &mut s);
        assert!(!s.is_valid(ChannelId(2)));
        assert_eq!(s.taken(ChannelId(3)), Some(Token::new(5, 0)));
    }

    #[test]
    fn mux_selects_input() {
        let m = Mux::new(ChannelId(0), ChannelId(1), ChannelId(2), ChannelId(3));
        let mut s = sig(4);
        s.drive(ChannelId(0), Token::new(1, 0)); // select true
        s.drive(ChannelId(2), Token::new(99, 0));
        s.accept(ChannelId(3));
        settle(&m, &mut s);
        assert_eq!(s.taken(ChannelId(3)), Some(Token::new(99, 0)));
        assert!(s.fired(ChannelId(0)));
    }

    #[test]
    fn collecting_sink_records_tokens() {
        let (mut k, store) = Sink::collecting(vec![ChannelId(0)]);
        let mut s = sig(1);
        s.drive(ChannelId(0), Token::new(4, 2));
        k.eval(&mut s);
        assert!(s.fired(ChannelId(0)));
        k.commit(&s);
        assert_eq!(store.borrow().as_slice(), &[Token::new(4, 2)]);
    }
}
