//! Elastic buffers: the sequential elements that break combinational cycles
//! and provide slack (the FIFOs of a dataflow circuit).

use std::collections::VecDeque;

use crate::component::{Component, Ports};
use crate::signal::{ChannelId, Signals};

/// An opaque elastic FIFO of fixed capacity.
///
/// `out.valid` and `in.ready` are both driven from registered state, so a
/// buffer on a feedback path breaks the combinational cycle. A capacity-1
/// buffer behaves like Dynamatic's OEHB (one token of slack, one cycle of
/// latency); deeper buffers model transparent FIFOs.
#[derive(Debug)]
pub struct Buffer {
    input: ChannelId,
    output: ChannelId,
    capacity: usize,
    fifo: VecDeque<crate::Token>,
}

impl Buffer {
    /// Creates a buffer of the given capacity between `input` and `output`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, input: ChannelId, output: ChannelId) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        Buffer {
            input,
            output,
            capacity,
            fifo: VecDeque::with_capacity(capacity),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Tokens currently stored.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// True when no token is stored.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }
}

impl Component for Buffer {
    fn type_name(&self) -> &'static str {
        "buffer"
    }

    fn ports(&self) -> Ports {
        Ports::new(vec![self.input], vec![self.output])
    }

    fn eval(&self, sig: &mut Signals) {
        if let Some(&front) = self.fifo.front() {
            sig.drive(self.output, front);
        }
        sig.accept_if(self.input, self.fifo.len() < self.capacity);
    }

    fn fire_driven_commit(&self) -> bool {
        true
    }

    fn commit(&mut self, sig: &Signals) -> bool {
        let mut changed = false;
        if sig.fired(self.output) {
            self.fifo.pop_front();
            changed = true;
        }
        if let Some(t) = sig.taken(self.input) {
            debug_assert!(self.fifo.len() < self.capacity);
            self.fifo.push_back(t);
            changed = true;
        }
        changed
    }

    fn flush(&mut self, from_iter: u64) {
        self.fifo.retain(|t| t.tag.iter < from_iter);
    }

    fn is_idle(&self) -> bool {
        self.fifo.is_empty()
    }

    fn occupancy(&self) -> usize {
        self.fifo.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn latency(&self) -> u32 {
        // The FIFO is opaque: a token entering this cycle is visible at the
        // head no earlier than the next (see
        // `buffer_introduces_one_cycle_latency`).
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Token;

    fn ch(i: u32) -> ChannelId {
        ChannelId(i)
    }

    fn one_cycle(
        b: &mut Buffer,
        drive_in: Option<Token>,
        out_ready: bool,
    ) -> (bool, Option<Token>) {
        let mut s = Signals::new(2);
        if let Some(t) = drive_in {
            s.drive(ch(0), t);
        }
        if out_ready {
            s.accept(ch(1));
        }
        for _ in 0..4 {
            b.eval(&mut s);
            if !s.take_changed() {
                break;
            }
        }
        b.eval(&mut s);
        let accepted = s.fired(ch(0));
        let emitted = s.taken(ch(1));
        b.commit(&s);
        (accepted, emitted)
    }

    #[test]
    fn buffer_introduces_one_cycle_latency() {
        let mut b = Buffer::new(1, ch(0), ch(1));
        let (acc, out) = one_cycle(&mut b, Some(Token::new(1, 0)), true);
        assert!(acc);
        assert_eq!(out, None, "opaque buffer cannot forward same-cycle");
        let (_, out) = one_cycle(&mut b, None, true);
        assert_eq!(out, Some(Token::new(1, 0)));
        assert!(b.is_empty());
    }

    #[test]
    fn full_buffer_backpressures() {
        let mut b = Buffer::new(1, ch(0), ch(1));
        let (acc, _) = one_cycle(&mut b, Some(Token::new(1, 0)), false);
        assert!(acc);
        let (acc, _) = one_cycle(&mut b, Some(Token::new(2, 1)), false);
        assert!(!acc, "full buffer must not accept");
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn deeper_buffer_pipelines() {
        let mut b = Buffer::new(4, ch(0), ch(1));
        for i in 0..4 {
            let (acc, _) = one_cycle(&mut b, Some(Token::new(i, i as u64)), false);
            assert!(acc);
        }
        assert_eq!(b.len(), 4);
        assert_eq!(b.capacity(), 4);
        let (acc, out) = one_cycle(&mut b, Some(Token::new(9, 9)), true);
        assert_eq!(out, Some(Token::new(0, 0)));
        // A slot was freed by the pop before the push is decided in real
        // hardware; our conservative model computes in.ready from the
        // pre-pop occupancy, so the push waits one cycle.
        assert!(!acc);
    }

    #[test]
    fn flush_drops_only_squashed_iterations() {
        let mut b = Buffer::new(4, ch(0), ch(1));
        for i in 0..4u64 {
            one_cycle(&mut b, Some(Token::new(i as i64, i)), false);
        }
        b.flush(2);
        assert_eq!(b.len(), 2);
        assert_eq!(b.occupancy(), 2);
        let (_, out) = one_cycle(&mut b, None, true);
        assert_eq!(out, Some(Token::new(0, 0)));
    }
}
