//! # prevv-dataflow — a cycle-accurate elastic dataflow circuit simulator
//!
//! This crate is the hardware substrate of the PreVV reproduction: it models
//! the *latency-insensitive* (elastic) circuits that dynamically scheduled
//! HLS compilers such as Dynamatic generate. Every component exchanges
//! tokens over point-to-point channels with a valid/ready handshake; the
//! engine resolves the handshake wires each clock cycle by monotone fixpoint
//! and advances component state on the clock edge.
//!
//! The simulator supports the two features memory-disambiguation studies
//! need beyond plain elasticity:
//!
//! * **tagged tokens** — every token carries its flattened loop-iteration
//!   number and a squash epoch ([`Tag`]), so controllers can reason about
//!   program order and squashes can be applied precisely;
//! * **pipeline squash** — a [`SquashBus`] lets a controller (premature
//!   value validation) flush all in-flight tokens of mis-speculated
//!   iterations and rewind the iteration source to replay them.
//!
//! ## Example
//!
//! Build and run a two-stage arithmetic pipeline:
//!
//! ```
//! use prevv_dataflow::{Netlist, Simulator, SquashBus};
//! use prevv_dataflow::components::{BinOp, BinaryAlu, Constant, Fork, IterSource, Sink, Buffer};
//!
//! # fn main() -> Result<(), prevv_dataflow::SimError> {
//! let mut net = Netlist::new();
//! let bus = SquashBus::new();
//! let (i, i1, i2, trig, one, sum) = (
//!     net.channel(), net.channel(), net.channel(),
//!     net.channel(), net.channel(), net.channel(),
//! );
//! net.add("src", IterSource::new((0..4).map(|v| vec![v]).collect(), vec![i], bus.clone()));
//! net.add("fork", Fork::new(i, vec![i1, i2]));
//! net.add("buf", Buffer::new(2, i2, trig));
//! net.add("one", Constant::new(1, trig, one));
//! net.add("inc", BinaryAlu::with_latency(BinOp::Add, 1, i1, one, sum));
//! let (sink, results) = Sink::collecting(vec![sum]);
//! net.add("sink", sink);
//!
//! let mut sim = Simulator::new(net, bus)?;
//! let report = sim.run()?;
//! assert_eq!(results.borrow().len(), 4);
//! assert!(report.cycles > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod component;
pub mod components;
mod engine;
mod error;
mod netlist;
mod signal;
mod squash;
mod stats;
pub mod sweep;
mod token;
pub mod trace;
pub mod viz;

pub use component::{Component, Ports};
pub use engine::{Scheduler, SimConfig, Simulator};
pub use error::{NetlistError, SimError};
pub use netlist::{ChannelEndpoints, Netlist, NodeId};
pub use signal::{ChannelId, Signals};
pub use squash::SquashBus;
pub use stats::SimReport;
pub use token::{Tag, Token, Value};
