//! Structural container for a dataflow circuit.

use crate::component::Component;
use crate::error::NetlistError;
use crate::signal::ChannelId;

/// Identifies a component within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Per-channel endpoint lists, indexed by [`ChannelId`] — the adjacency
/// view a static analyzer needs to treat the netlist as a directed graph
/// (producer node → channel → consumer node).
///
/// Built by [`Netlist::channel_endpoints`]. A well-formed circuit has
/// exactly one producer and one consumer per channel; the lists expose the
/// malformed cases (empty or multiple) so diagnostics can name every
/// offending node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChannelEndpoints {
    /// `producers[ch.index()]` = nodes listing `ch` among their outputs.
    pub producers: Vec<Vec<NodeId>>,
    /// `consumers[ch.index()]` = nodes listing `ch` among their inputs.
    pub consumers: Vec<Vec<NodeId>>,
}

/// A dataflow circuit: components plus the point-to-point channels that
/// connect them.
///
/// Channels are allocated first ([`Netlist::channel`]) and handed to
/// component constructors, mirroring how structural HDL instantiates nets
/// before binding them to ports:
///
/// ```
/// use prevv_dataflow::{Netlist, components::{Constant, Sink}};
///
/// let mut net = Netlist::new();
/// let trigger = net.channel();
/// let out = net.channel();
/// // ... a producer of `trigger` would be added here in a real circuit ...
/// net.add("one", Constant::new(1, trigger, out));
/// net.add("sink", Sink::new(vec![out]));
/// ```
#[derive(Default)]
pub struct Netlist {
    components: Vec<Box<dyn Component>>,
    labels: Vec<String>,
    channels: u32,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh channel.
    pub fn channel(&mut self) -> ChannelId {
        let id = ChannelId(self.channels);
        self.channels += 1;
        id
    }

    /// Allocates `n` fresh channels.
    pub fn channels(&mut self, n: usize) -> Vec<ChannelId> {
        (0..n).map(|_| self.channel()).collect()
    }

    /// Adds a component under a human-readable instance label.
    pub fn add(&mut self, label: impl Into<String>, component: impl Component + 'static) -> NodeId {
        self.add_boxed(label, Box::new(component))
    }

    /// Adds an already-boxed component (useful when the concrete type is
    /// chosen at runtime, e.g. LSQ vs. PreVV memory controllers).
    pub fn add_boxed(&mut self, label: impl Into<String>, component: Box<dyn Component>) -> NodeId {
        let id = NodeId(self.components.len() as u32);
        self.components.push(component);
        self.labels.push(label.into());
        id
    }

    /// Number of components.
    pub fn node_count(&self) -> usize {
        self.components.len()
    }

    /// Number of allocated channels.
    pub fn channel_count(&self) -> usize {
        self.channels as usize
    }

    /// Instance label of a node.
    pub fn label(&self, node: NodeId) -> &str {
        &self.labels[node.index()]
    }

    /// Immutable access to a node's component.
    pub fn component(&self, node: NodeId) -> &dyn Component {
        self.components[node.index()].as_ref()
    }

    /// Iterates over `(NodeId, label, component)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &str, &dyn Component)> {
        self.components
            .iter()
            .zip(&self.labels)
            .enumerate()
            .map(|(i, (c, l))| (NodeId(i as u32), l.as_str(), c.as_ref()))
    }

    pub(crate) fn components_mut(&mut self) -> &mut [Box<dyn Component>] {
        &mut self.components
    }

    pub(crate) fn components(&self) -> &[Box<dyn Component>] {
        &self.components
    }

    /// Per-channel endpoint map: which nodes drive and which nodes consume
    /// every allocated channel.
    ///
    /// This is the graph-introspection primitive the static circuit
    /// verifier (the PV1xx lints) builds its directed channel graph from; it
    /// is also the single source of truth behind [`Netlist::validate`].
    pub fn channel_endpoints(&self) -> ChannelEndpoints {
        let n = self.channels as usize;
        let mut producers = vec![Vec::new(); n];
        let mut consumers = vec![Vec::new(); n];
        for (i, c) in self.components.iter().enumerate() {
            let node = NodeId(i as u32);
            let ports = c.ports();
            for ch in ports.outputs {
                producers[ch.index()].push(node);
            }
            for ch in ports.inputs {
                consumers[ch.index()].push(node);
            }
        }
        ChannelEndpoints {
            producers,
            consumers,
        }
    }

    /// Per-channel unique endpoint tables `(producer_of, consumer_of)`,
    /// indexed by [`ChannelId::index`] — the flattened form of
    /// [`channel_endpoints`](Netlist::channel_endpoints) the event-driven
    /// scheduler propagates wake-ups along.
    ///
    /// Returns `None` unless every channel has exactly one producer and one
    /// consumer (i.e. unless [`validate`](Netlist::validate) passes).
    pub fn unique_endpoints(&self) -> Option<(Vec<NodeId>, Vec<NodeId>)> {
        let ends = self.channel_endpoints();
        let mut producers = Vec::with_capacity(self.channels as usize);
        let mut consumers = Vec::with_capacity(self.channels as usize);
        for i in 0..self.channels as usize {
            match (&ends.producers[i][..], &ends.consumers[i][..]) {
                (&[p], &[c]) => {
                    producers.push(p);
                    consumers.push(c);
                }
                _ => return None,
            }
        }
        Some((producers, consumers))
    }

    /// All structural connectivity errors, in channel-id order (producer
    /// problems reported before consumer problems for the same channel).
    ///
    /// An empty vector means every channel has exactly one producer and one
    /// consumer.
    pub fn structural_errors(&self) -> Vec<NetlistError> {
        let ends = self.channel_endpoints();
        let mut errors = Vec::new();
        for i in 0..self.channels as usize {
            let ch = ChannelId(i as u32);
            match ends.producers[i].len() {
                0 => errors.push(NetlistError::MissingProducer(ch)),
                1 => {}
                _ => errors.push(NetlistError::DuplicateProducer(ch)),
            }
            match ends.consumers[i].len() {
                0 => errors.push(NetlistError::MissingConsumer(ch)),
                1 => {}
                _ => errors.push(NetlistError::DuplicateConsumer(ch)),
            }
        }
        errors
    }

    /// Checks that every channel has exactly one producer and one consumer.
    ///
    /// Delegates to [`Netlist::structural_errors`] — the same walk the PV101
    /// (dangling channel) and PV102 (multi-driven channel) circuit lints
    /// report through — so there is one source of truth for structural
    /// connectivity.
    ///
    /// # Errors
    ///
    /// Returns the first [`NetlistError`] found: a dangling or multiply
    /// driven channel.
    pub fn validate(&self) -> Result<(), NetlistError> {
        match self.structural_errors().into_iter().next() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Total occupancy across all components (tokens held anywhere).
    pub fn total_occupancy(&self) -> usize {
        self.components.iter().map(|c| c.occupancy()).sum()
    }

    /// Describes where tokens are currently held, for deadlock diagnostics.
    pub fn occupancy_report(&self) -> String {
        let mut parts = Vec::new();
        for (c, l) in self.components.iter().zip(&self.labels) {
            let occ = c.occupancy();
            if occ > 0 || !c.is_idle() {
                parts.push(format!("{l}({}): {occ} token(s)", c.type_name()));
            }
        }
        if parts.is_empty() {
            "no tokens held anywhere".to_string()
        } else {
            parts.join(", ")
        }
    }
}

impl std::fmt::Debug for Netlist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Netlist")
            .field("nodes", &self.components.len())
            .field("channels", &self.channels)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{Constant, Sink};

    #[test]
    fn validate_catches_dangling_channels() {
        let mut net = Netlist::new();
        let orphan = net.channel();
        assert_eq!(net.validate(), Err(NetlistError::MissingProducer(orphan)));
    }

    #[test]
    fn validate_accepts_well_formed() {
        let mut net = Netlist::new();
        let a = net.channel();
        let b = net.channel();
        net.add("c", Constant::new(3, a, b));
        // `a` needs a producer; reuse a constant driven by `b`... instead,
        // close the structure with a sink for b and a source-like constant
        // fed by nothing is invalid, so wire a two-node ring via a second
        // constant is also invalid. Use Sink to consume and a second
        // Constant producing `a` from `b` would double-use b. Keep it
        // simple: a constant from `a` to `b` requires producing `a`.
        // We instead check the duplicate-consumer detection.
        net.add("sink1", Sink::new(vec![b]));
        net.add("sink2", Sink::new(vec![b]));
        assert_eq!(net.validate(), Err(NetlistError::MissingProducer(a)));
    }

    #[test]
    fn structural_errors_reports_all_in_channel_order() {
        let mut net = Netlist::new();
        let a = net.channel();
        let b = net.channel();
        net.add("c", Constant::new(3, a, b));
        net.add("sink1", Sink::new(vec![b]));
        net.add("sink2", Sink::new(vec![b]));
        assert_eq!(
            net.structural_errors(),
            vec![
                NetlistError::MissingProducer(a),
                NetlistError::DuplicateConsumer(b),
            ]
        );
    }

    #[test]
    fn channel_endpoints_names_every_node() {
        let mut net = Netlist::new();
        let a = net.channel();
        let b = net.channel();
        let k = net.add("c", Constant::new(3, a, b));
        let s1 = net.add("sink1", Sink::new(vec![b]));
        let s2 = net.add("sink2", Sink::new(vec![b]));
        let ends = net.channel_endpoints();
        assert!(ends.producers[a.index()].is_empty());
        assert_eq!(ends.consumers[a.index()], vec![k]);
        assert_eq!(ends.producers[b.index()], vec![k]);
        assert_eq!(ends.consumers[b.index()], vec![s1, s2]);
    }

    #[test]
    fn labels_and_lookup() {
        let mut net = Netlist::new();
        let a = net.channel();
        let b = net.channel();
        let n = net.add("konst", Constant::new(1, a, b));
        assert_eq!(net.label(n), "konst");
        assert_eq!(net.component(n).type_name(), "constant");
        assert_eq!(net.node_count(), 1);
        assert_eq!(net.channel_count(), 2);
    }
}
