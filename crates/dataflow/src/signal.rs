//! Per-cycle wire state for valid/ready handshake channels.
//!
//! A latency-insensitive circuit resolves, every clock cycle, a set of
//! combinational `valid` (producer has a token) and `ready` (consumer can
//! take it) wires. The simulator computes them by *monotone fixpoint
//! iteration*: all wires start low, component [`eval`] functions may only
//! raise them, and evaluation repeats until no wire changes. A token is
//! transferred on every channel whose `valid` and `ready` are both high at
//! the fixpoint.
//!
//! Monotonicity of `valid`/`ready` guarantees termination. Token *data* is
//! allowed to be rewritten during the fixpoint (e.g. a merge that first sees
//! its second input and later discovers the first); iteration continues until
//! data is stable too, so consumers always observe the final assignment.
//!
//! [`eval`]: crate::Component::eval

use crate::token::Token;

/// Identifies one point-to-point channel in a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub(crate) u32);

impl ChannelId {
    /// Raw index of this channel, usable for per-channel bookkeeping tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a channel id from a raw index (e.g. when iterating all
    /// channels of a netlist for visualization or tracing).
    pub fn from_index(i: usize) -> Self {
        ChannelId(i as u32)
    }
}

impl std::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// One bit per channel, packed 64 to a word: the whole-netlist scans the
/// engine performs every cycle (fired/stall sampling, fast-path fired
/// masks) reduce to word-wise boolean algebra and popcounts.
#[inline]
fn bit_get(words: &[u64], i: usize) -> bool {
    (words[i >> 6] >> (i & 63)) & 1 != 0
}

#[inline]
fn bit_set(words: &mut [u64], i: usize) {
    words[i >> 6] |= 1 << (i & 63);
}

#[inline]
fn bit_clear(words: &mut [u64], i: usize) {
    words[i >> 6] &= !(1 << (i & 63));
}

/// The combinational wire state of every channel during one clock cycle.
///
/// Obtained by the engine; components interact with it inside
/// [`Component::eval`](crate::Component::eval) and read the fixpoint result
/// inside [`Component::commit`](crate::Component::commit). `valid` and
/// `ready` are packed bitmaps (see [`bit_get`]).
#[derive(Debug, Clone)]
pub struct Signals {
    valid: Vec<u64>,
    ready: Vec<u64>,
    data: Vec<Option<Token>>,
    channels: usize,
    changed: bool,
    /// When present, every wire raised/rewritten is marked here — used by the
    /// engine's combinational-cycle diagnosis to name the channels that are
    /// still churning after the sweep budget is exhausted.
    record: Option<Vec<bool>>,
}

impl Signals {
    /// Creates wire state for `n` channels, all low.
    pub fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        Signals {
            valid: vec![0; words],
            ready: vec![0; words],
            data: vec![None; n],
            channels: n,
            changed: false,
            record: None,
        }
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.channels
    }

    /// True if there are no channels.
    pub fn is_empty(&self) -> bool {
        self.channels == 0
    }

    /// Resets all wires low at the start of a cycle.
    pub(crate) fn reset(&mut self) {
        self.valid.iter_mut().for_each(|v| *v = 0);
        self.ready.iter_mut().for_each(|r| *r = 0);
        self.data.iter_mut().for_each(|d| *d = None);
        self.changed = false;
    }

    /// Clears the change flag before one fixpoint sweep; returns the previous
    /// value.
    pub(crate) fn take_changed(&mut self) -> bool {
        std::mem::replace(&mut self.changed, false)
    }

    /// Starts marking every subsequently touched wire (divergence diagnosis).
    pub(crate) fn record_changes(&mut self) {
        self.record = Some(vec![false; self.len()]);
    }

    /// Stops recording and returns the touched channels in id order.
    pub(crate) fn take_recorded(&mut self) -> Vec<ChannelId> {
        self.record
            .take()
            .unwrap_or_default()
            .iter()
            .enumerate()
            .filter(|(_, &hit)| hit)
            .map(|(i, _)| ChannelId::from_index(i))
            .collect()
    }

    fn mark(&mut self, i: usize) {
        self.changed = true;
        if let Some(rec) = &mut self.record {
            rec[i] = true;
        }
    }

    /// Producer-side wire pair of `ch`: `(valid, data)`. The event scheduler
    /// snapshots this before re-evaluating a producer and diffs afterwards to
    /// decide whether the consumer must be woken.
    pub(crate) fn drive_state(&self, ch: ChannelId) -> (bool, Option<Token>) {
        (bit_get(&self.valid, ch.index()), self.data[ch.index()])
    }

    /// Lowers `valid` and clears the data of `ch`. Only the event scheduler
    /// may call this, and only on the output channels of the component it is
    /// about to re-evaluate: within a cycle wires are monotone, but across
    /// warm-started cycles a producer's stale drive must be dropped before
    /// its fresh `eval` re-asserts (or not) the offer. Valid and data are
    /// cleared together so no consumer can observe a stale token behind a
    /// fresh `valid`.
    pub(crate) fn clear_drive(&mut self, ch: ChannelId) {
        let i = ch.index();
        bit_clear(&mut self.valid, i);
        self.data[i] = None;
    }

    /// Lowers `ready` on `ch` (event scheduler, consumer side — see
    /// [`clear_drive`](Signals::clear_drive)).
    pub(crate) fn clear_ready(&mut self, ch: ChannelId) {
        bit_clear(&mut self.ready, ch.index());
    }

    /// Producer side: is a token offered on `ch` this cycle?
    pub fn is_valid(&self, ch: ChannelId) -> bool {
        bit_get(&self.valid, ch.index())
    }

    /// Consumer side: is the consumer of `ch` willing to accept this cycle?
    pub fn is_ready(&self, ch: ChannelId) -> bool {
        bit_get(&self.ready, ch.index())
    }

    /// The token currently offered on `ch`, if any.
    pub fn token(&self, ch: ChannelId) -> Option<Token> {
        self.data[ch.index()]
    }

    /// Did a transfer happen on `ch` this cycle (valid && ready)?
    ///
    /// Only meaningful after the fixpoint, i.e. inside
    /// [`Component::commit`](crate::Component::commit).
    pub fn fired(&self, ch: ChannelId) -> bool {
        let w = self.valid[ch.index() >> 6] & self.ready[ch.index() >> 6];
        (w >> (ch.index() & 63)) & 1 != 0
    }

    /// The token transferred on `ch` this cycle, if the channel fired.
    pub fn taken(&self, ch: ChannelId) -> Option<Token> {
        if self.fired(ch) {
            self.data[ch.index()]
        } else {
            None
        }
    }

    /// Producer drives a token on `ch` (raises `valid` and sets the data).
    ///
    /// Raising an already-high `valid` with identical data is a no-op;
    /// rewriting the data is permitted (and flags another fixpoint sweep) so
    /// that arbitrating components may revise their choice as more inputs
    /// become visible. `valid` itself can never be lowered within a cycle.
    pub fn drive(&mut self, ch: ChannelId, token: Token) {
        let i = ch.index();
        if !bit_get(&self.valid, i) || self.data[i] != Some(token) {
            bit_set(&mut self.valid, i);
            self.data[i] = Some(token);
            self.mark(i);
        }
    }

    /// Consumer raises `ready` on `ch`.
    pub fn accept(&mut self, ch: ChannelId) {
        let i = ch.index();
        if !bit_get(&self.ready, i) {
            bit_set(&mut self.ready, i);
            self.mark(i);
        }
    }

    /// Runs `eval` repeatedly until the wire state stops changing, up to
    /// `max_sweeps` iterations — a public fixpoint helper for test benches
    /// that drive components without the full engine. Returns `true` if the
    /// state converged.
    pub fn settle_with(&mut self, max_sweeps: usize, mut eval: impl FnMut(&mut Signals)) -> bool {
        for _ in 0..max_sweeps {
            eval(self);
            if !self.take_changed() {
                return true;
            }
        }
        false
    }

    /// Consumer raises `ready` on `ch` if and only if `cond` holds.
    ///
    /// Convenience for the common pattern `if cond { sig.accept(ch) }`.
    pub fn accept_if(&mut self, ch: ChannelId, cond: bool) {
        if cond {
            self.accept(ch);
        }
    }

    /// One-pass fixpoint sample: returns `(fired, stalled)` counts, adds 1
    /// to `stall_counts[ch]` for every stalled channel (the pinned stall
    /// semantics: valid-and-not-ready at the fixpoint), and appends the
    /// index of every fired channel to `fired_out`. Fused and word-parallel
    /// because the engine takes this sample every cycle.
    pub(crate) fn sample_cycle(
        &self,
        stall_counts: &mut [u64],
        fired_out: &mut Vec<usize>,
    ) -> (u64, u64) {
        let mut fired = 0;
        let mut stalled = 0;
        for (w, (v, r)) in self.valid.iter().zip(&self.ready).enumerate() {
            let mut f = v & r;
            let mut st = v & !r;
            fired += f.count_ones() as u64;
            stalled += st.count_ones() as u64;
            while f != 0 {
                fired_out.push((w << 6) | f.trailing_zeros() as usize);
                f &= f - 1;
            }
            while st != 0 {
                stall_counts[(w << 6) | st.trailing_zeros() as usize] += 1;
                st &= st - 1;
            }
        }
        (fired, stalled)
    }

    /// True when any channel in `mask` (a packed bitmap as produced by
    /// [`fired_mask`](Signals::fired_mask)) fired this cycle. The mask may
    /// be shorter than the channel space; missing words are treated as zero.
    pub fn any_masked_fired(&self, mask: &[u64]) -> bool {
        self.valid
            .iter()
            .zip(&self.ready)
            .zip(mask)
            .any(|((v, r), m)| v & r & m != 0)
    }

    /// Builds a packed bitmap covering `channels`, for
    /// [`any_masked_fired`](Signals::any_masked_fired). Independent of any
    /// `Signals` instance; associated here to keep the bit layout private.
    pub fn fired_mask(channels: impl IntoIterator<Item = ChannelId>) -> Vec<u64> {
        let mut mask = Vec::new();
        for ch in channels {
            let w = ch.index() >> 6;
            if w >= mask.len() {
                mask.resize(w + 1, 0);
            }
            mask[w] |= 1 << (ch.index() & 63);
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch(i: u32) -> ChannelId {
        ChannelId(i)
    }

    #[test]
    fn drive_raises_valid_and_sets_data() {
        let mut s = Signals::new(2);
        assert!(!s.is_valid(ch(0)));
        s.drive(ch(0), Token::new(5, 0));
        assert!(s.is_valid(ch(0)));
        assert_eq!(s.token(ch(0)), Some(Token::new(5, 0)));
        assert!(!s.is_valid(ch(1)));
    }

    #[test]
    fn fired_requires_both_sides() {
        let mut s = Signals::new(1);
        s.drive(ch(0), Token::new(1, 0));
        assert!(!s.fired(ch(0)));
        s.accept(ch(0));
        assert!(s.fired(ch(0)));
        assert_eq!(s.taken(ch(0)), Some(Token::new(1, 0)));
    }

    #[test]
    fn idempotent_drive_does_not_flag_change() {
        let mut s = Signals::new(1);
        s.drive(ch(0), Token::new(1, 0));
        assert!(s.take_changed());
        s.drive(ch(0), Token::new(1, 0));
        assert!(!s.take_changed());
        // Rewriting with different data flags a change.
        s.drive(ch(0), Token::new(2, 0));
        assert!(s.take_changed());
    }

    #[test]
    fn reset_lowers_everything() {
        let mut s = Signals::new(1);
        s.drive(ch(0), Token::new(1, 0));
        s.accept(ch(0));
        s.reset();
        assert!(!s.is_valid(ch(0)));
        assert!(!s.is_ready(ch(0)));
        assert_eq!(s.token(ch(0)), None);
    }

    #[test]
    fn stall_accounting() {
        let mut s = Signals::new(3);
        s.drive(ch(0), Token::new(1, 0));
        s.accept(ch(0));
        s.drive(ch(1), Token::new(2, 0));
        let mut counts = vec![0u64; 3];
        let mut fired = Vec::new();
        assert_eq!(s.sample_cycle(&mut counts, &mut fired), (1, 1));
        assert_eq!(fired, vec![0]);
        assert_eq!(counts, vec![0, 1, 0], "stalled = valid && !ready");
    }

    #[test]
    fn masked_fired_matches_per_channel_fired() {
        let mut s = Signals::new(70);
        s.drive(ch(69), Token::new(1, 0));
        let mask = Signals::fired_mask([ch(2), ch(69)]);
        assert!(!s.any_masked_fired(&mask), "valid but not ready");
        s.accept(ch(69));
        assert!(s.any_masked_fired(&mask));
        let other = Signals::fired_mask([ch(5)]);
        assert!(!s.any_masked_fired(&other));
        // A short mask (no high words) is treated as all-zero there.
        let short = Signals::fired_mask([ch(3)]);
        assert_eq!(short.len(), 1);
        assert!(!s.any_masked_fired(&short));
    }
}
