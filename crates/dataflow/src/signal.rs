//! Per-cycle wire state for valid/ready handshake channels.
//!
//! A latency-insensitive circuit resolves, every clock cycle, a set of
//! combinational `valid` (producer has a token) and `ready` (consumer can
//! take it) wires. The simulator computes them by *monotone fixpoint
//! iteration*: all wires start low, component [`eval`] functions may only
//! raise them, and evaluation repeats until no wire changes. A token is
//! transferred on every channel whose `valid` and `ready` are both high at
//! the fixpoint.
//!
//! Monotonicity of `valid`/`ready` guarantees termination. Token *data* is
//! allowed to be rewritten during the fixpoint (e.g. a merge that first sees
//! its second input and later discovers the first); iteration continues until
//! data is stable too, so consumers always observe the final assignment.
//!
//! [`eval`]: crate::Component::eval

use crate::token::Token;

/// Identifies one point-to-point channel in a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub(crate) u32);

impl ChannelId {
    /// Raw index of this channel, usable for per-channel bookkeeping tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a channel id from a raw index (e.g. when iterating all
    /// channels of a netlist for visualization or tracing).
    pub fn from_index(i: usize) -> Self {
        ChannelId(i as u32)
    }
}

impl std::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// The combinational wire state of every channel during one clock cycle.
///
/// Obtained by the engine; components interact with it inside
/// [`Component::eval`](crate::Component::eval) and read the fixpoint result
/// inside [`Component::commit`](crate::Component::commit).
#[derive(Debug, Clone)]
pub struct Signals {
    valid: Vec<bool>,
    ready: Vec<bool>,
    data: Vec<Option<Token>>,
    changed: bool,
}

impl Signals {
    /// Creates wire state for `n` channels, all low.
    pub fn new(n: usize) -> Self {
        Signals {
            valid: vec![false; n],
            ready: vec![false; n],
            data: vec![None; n],
            changed: false,
        }
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.valid.len()
    }

    /// True if there are no channels.
    pub fn is_empty(&self) -> bool {
        self.valid.is_empty()
    }

    /// Resets all wires low at the start of a cycle.
    pub(crate) fn reset(&mut self) {
        self.valid.iter_mut().for_each(|v| *v = false);
        self.ready.iter_mut().for_each(|r| *r = false);
        self.data.iter_mut().for_each(|d| *d = None);
        self.changed = false;
    }

    /// Clears the change flag before one fixpoint sweep; returns the previous
    /// value.
    pub(crate) fn take_changed(&mut self) -> bool {
        std::mem::replace(&mut self.changed, false)
    }

    /// Producer side: is a token offered on `ch` this cycle?
    pub fn is_valid(&self, ch: ChannelId) -> bool {
        self.valid[ch.index()]
    }

    /// Consumer side: is the consumer of `ch` willing to accept this cycle?
    pub fn is_ready(&self, ch: ChannelId) -> bool {
        self.ready[ch.index()]
    }

    /// The token currently offered on `ch`, if any.
    pub fn token(&self, ch: ChannelId) -> Option<Token> {
        self.data[ch.index()]
    }

    /// Did a transfer happen on `ch` this cycle (valid && ready)?
    ///
    /// Only meaningful after the fixpoint, i.e. inside
    /// [`Component::commit`](crate::Component::commit).
    pub fn fired(&self, ch: ChannelId) -> bool {
        self.valid[ch.index()] && self.ready[ch.index()]
    }

    /// The token transferred on `ch` this cycle, if the channel fired.
    pub fn taken(&self, ch: ChannelId) -> Option<Token> {
        if self.fired(ch) {
            self.data[ch.index()]
        } else {
            None
        }
    }

    /// Producer drives a token on `ch` (raises `valid` and sets the data).
    ///
    /// Raising an already-high `valid` with identical data is a no-op;
    /// rewriting the data is permitted (and flags another fixpoint sweep) so
    /// that arbitrating components may revise their choice as more inputs
    /// become visible. `valid` itself can never be lowered within a cycle.
    pub fn drive(&mut self, ch: ChannelId, token: Token) {
        let i = ch.index();
        if !self.valid[i] || self.data[i] != Some(token) {
            self.valid[i] = true;
            self.data[i] = Some(token);
            self.changed = true;
        }
    }

    /// Consumer raises `ready` on `ch`.
    pub fn accept(&mut self, ch: ChannelId) {
        let i = ch.index();
        if !self.ready[i] {
            self.ready[i] = true;
            self.changed = true;
        }
    }

    /// Runs `eval` repeatedly until the wire state stops changing, up to
    /// `max_sweeps` iterations — a public fixpoint helper for test benches
    /// that drive components without the full engine. Returns `true` if the
    /// state converged.
    pub fn settle_with(&mut self, max_sweeps: usize, mut eval: impl FnMut(&mut Signals)) -> bool {
        for _ in 0..max_sweeps {
            eval(self);
            if !self.take_changed() {
                return true;
            }
        }
        false
    }

    /// Consumer raises `ready` on `ch` if and only if `cond` holds.
    ///
    /// Convenience for the common pattern `if cond { sig.accept(ch) }`.
    pub fn accept_if(&mut self, ch: ChannelId, cond: bool) {
        if cond {
            self.accept(ch);
        }
    }

    /// Number of channels that fired this cycle.
    pub(crate) fn count_fired(&self) -> u64 {
        self.valid
            .iter()
            .zip(&self.ready)
            .filter(|(v, r)| **v && **r)
            .count() as u64
    }

    /// Number of channels stalled this cycle (valid but not ready).
    pub(crate) fn count_stalled(&self) -> u64 {
        self.valid
            .iter()
            .zip(&self.ready)
            .filter(|(v, r)| **v && !**r)
            .count() as u64
    }

    /// Adds 1 to `counts[ch]` for every channel stalled this cycle.
    pub(crate) fn accumulate_stalls(&self, counts: &mut [u64]) {
        for (i, (v, r)) in self.valid.iter().zip(&self.ready).enumerate() {
            if *v && !*r {
                counts[i] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch(i: u32) -> ChannelId {
        ChannelId(i)
    }

    #[test]
    fn drive_raises_valid_and_sets_data() {
        let mut s = Signals::new(2);
        assert!(!s.is_valid(ch(0)));
        s.drive(ch(0), Token::new(5, 0));
        assert!(s.is_valid(ch(0)));
        assert_eq!(s.token(ch(0)), Some(Token::new(5, 0)));
        assert!(!s.is_valid(ch(1)));
    }

    #[test]
    fn fired_requires_both_sides() {
        let mut s = Signals::new(1);
        s.drive(ch(0), Token::new(1, 0));
        assert!(!s.fired(ch(0)));
        s.accept(ch(0));
        assert!(s.fired(ch(0)));
        assert_eq!(s.taken(ch(0)), Some(Token::new(1, 0)));
    }

    #[test]
    fn idempotent_drive_does_not_flag_change() {
        let mut s = Signals::new(1);
        s.drive(ch(0), Token::new(1, 0));
        assert!(s.take_changed());
        s.drive(ch(0), Token::new(1, 0));
        assert!(!s.take_changed());
        // Rewriting with different data flags a change.
        s.drive(ch(0), Token::new(2, 0));
        assert!(s.take_changed());
    }

    #[test]
    fn reset_lowers_everything() {
        let mut s = Signals::new(1);
        s.drive(ch(0), Token::new(1, 0));
        s.accept(ch(0));
        s.reset();
        assert!(!s.is_valid(ch(0)));
        assert!(!s.is_ready(ch(0)));
        assert_eq!(s.token(ch(0)), None);
    }

    #[test]
    fn stall_accounting() {
        let mut s = Signals::new(3);
        s.drive(ch(0), Token::new(1, 0));
        s.accept(ch(0));
        s.drive(ch(1), Token::new(2, 0));
        assert_eq!(s.count_fired(), 1);
        assert_eq!(s.count_stalled(), 1);
    }
}
