//! Error types for netlist construction and simulation.

use std::fmt;

use crate::signal::ChannelId;

/// Structural problems detected while validating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A channel has no producing component.
    MissingProducer(ChannelId),
    /// A channel has no consuming component.
    MissingConsumer(ChannelId),
    /// A channel is driven by more than one component.
    DuplicateProducer(ChannelId),
    /// A channel is consumed by more than one component.
    DuplicateConsumer(ChannelId),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::MissingProducer(ch) => write!(f, "channel {ch} has no producer"),
            NetlistError::MissingConsumer(ch) => write!(f, "channel {ch} has no consumer"),
            NetlistError::DuplicateProducer(ch) => {
                write!(f, "channel {ch} is driven by more than one component")
            }
            NetlistError::DuplicateConsumer(ch) => {
                write!(f, "channel {ch} is consumed by more than one component")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// Runtime failures of a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The wire fixpoint did not converge, which indicates a combinational
    /// cycle (a loop of channels with no elastic buffer on it).
    CombinationalCycle {
        /// Cycle number at which divergence was detected.
        cycle: u64,
        /// The channels still churning after the sweep budget was exhausted
        /// (smallest observed non-converged wire set, in id order) — the
        /// unbuffered feedback path runs through these.
        channels: Vec<ChannelId>,
    },
    /// No token transferred and no component made internal progress for the
    /// watchdog window; the circuit is deadlocked.
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Human-readable description of where tokens are stuck.
        detail: String,
    },
    /// The simulation exceeded its cycle budget without reaching quiescence.
    Timeout {
        /// The exhausted budget.
        max_cycles: u64,
    },
    /// The netlist failed structural validation.
    Structure(NetlistError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CombinationalCycle { cycle, channels } => {
                write!(f, "combinational cycle detected at cycle {cycle}: wire fixpoint did not converge (missing elastic buffer on a feedback path)")?;
                if !channels.is_empty() {
                    let names: Vec<String> = channels.iter().map(ChannelId::to_string).collect();
                    write!(f, "; non-converging channels: {}", names.join(", "))?;
                }
                Ok(())
            }
            SimError::Deadlock { cycle, detail } => {
                write!(f, "deadlock at cycle {cycle}: {detail}")
            }
            SimError::Timeout { max_cycles } => {
                write!(f, "simulation did not finish within {max_cycles} cycles")
            }
            SimError::Structure(e) => write!(f, "invalid netlist: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Structure(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for SimError {
    fn from(e: NetlistError) -> Self {
        SimError::Structure(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = SimError::Deadlock {
            cycle: 10,
            detail: "premature queue full".into(),
        };
        let s = e.to_string();
        assert!(s.contains("deadlock at cycle 10"));
        assert!(s.contains("premature queue full"));
    }

    #[test]
    fn structure_error_converts() {
        let e: SimError = NetlistError::MissingProducer(ChannelId(3)).into();
        assert!(matches!(e, SimError::Structure(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
