//! The cycle-accurate simulation engine.
//!
//! Each clock cycle proceeds in three phases:
//!
//! 1. **Wire fixpoint** — all components' [`eval`](crate::Component::eval)
//!    functions run repeatedly until no `valid`/`ready`/data wire changes.
//!    `valid` and `ready` are monotone within a cycle, so the fixpoint exists
//!    and the iteration count is bounded; exceeding the bound means a
//!    combinational cycle (a feedback path without an elastic buffer) and is
//!    reported as [`SimError::CombinationalCycle`].
//! 2. **Commit** — every component's [`commit`](crate::Component::commit)
//!    observes which channels fired and updates its registers.
//! 3. **Squash application** — if a disambiguation controller posted a squash
//!    on the [`SquashBus`], the engine bumps the epoch, calls
//!    [`flush`](crate::Component::flush) on every component (dropping all
//!    tokens of the squashed iterations), and lets the iteration source
//!    rewind. This models the broadcast pipeline flush of the paper's mux +
//!    squash signal.
//!
//! The run ends when every component is idle (quiescence), when the cycle
//! budget is exhausted, or when the no-progress watchdog declares deadlock —
//! the condition the paper's fake tokens exist to prevent (§V-C).

use crate::error::SimError;
use crate::netlist::Netlist;
use crate::signal::Signals;
use crate::squash::SquashBus;
use crate::stats::SimReport;
use crate::trace::TraceRecorder;

/// Tuning knobs for a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Hard upper bound on simulated cycles.
    pub max_cycles: u64,
    /// Declare deadlock after this many consecutive cycles with no channel
    /// transfer while tokens are still in flight.
    pub watchdog: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_cycles: 2_000_000,
            watchdog: 1_000,
        }
    }
}

/// Drives a [`Netlist`] to quiescence.
pub struct Simulator {
    netlist: Netlist,
    signals: Signals,
    bus: SquashBus,
    config: SimConfig,
    cycle: u64,
    transfers: u64,
    stall_cycles: u64,
    idle_streak: u64,
    recorder: Option<TraceRecorder>,
    channel_stalls: Vec<u64>,
}

impl Simulator {
    /// Creates a simulator for `netlist`, validating its structure.
    ///
    /// The `bus` must be the same squash bus handed to the netlist's
    /// iteration source and disambiguation controller (if any); pass a fresh
    /// bus for circuits without squash support.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Structure`] if the netlist has dangling or
    /// multiply-driven channels.
    pub fn new(netlist: Netlist, bus: SquashBus) -> Result<Self, SimError> {
        netlist.validate()?;
        let signals = Signals::new(netlist.channel_count());
        let channel_stalls = vec![0; netlist.channel_count()];
        Ok(Simulator {
            netlist,
            signals,
            bus,
            config: SimConfig::default(),
            cycle: 0,
            transfers: 0,
            stall_cycles: 0,
            idle_streak: 0,
            recorder: None,
            channel_stalls,
        })
    }

    /// Replaces the default configuration.
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a channel trace recorder; it samples every cycle from now
    /// on. See [`TraceRecorder`].
    pub fn attach_recorder(&mut self, recorder: TraceRecorder) {
        self.recorder = Some(recorder);
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&TraceRecorder> {
        self.recorder.as_ref()
    }

    /// Detaches and returns the recorder.
    pub fn take_recorder(&mut self) -> Option<TraceRecorder> {
        self.recorder.take()
    }

    /// Current cycle number.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Read access to the simulated netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Executes one clock cycle.
    ///
    /// # Errors
    ///
    /// [`SimError::CombinationalCycle`] if the wire fixpoint diverges.
    pub fn step(&mut self) -> Result<(), SimError> {
        self.signals.reset();
        // Monotone fixpoint: each sweep can only raise valid/ready wires, so
        // the sweep count is bounded by the number of wires plus slack for
        // data rewrites by arbitrating components.
        let budget = 2 * self.signals.len() + self.netlist.node_count() + 8;
        let mut converged = false;
        for _ in 0..budget {
            for c in self.netlist.components() {
                c.eval(&mut self.signals);
            }
            if !self.signals.take_changed() {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(SimError::CombinationalCycle { cycle: self.cycle });
        }

        let fired = self.signals.count_fired();
        self.transfers += fired;
        self.stall_cycles += self.signals.count_stalled();
        self.signals.accumulate_stalls(&mut self.channel_stalls);
        if let Some(rec) = &mut self.recorder {
            rec.sample(&self.signals);
        }

        for c in self.netlist.components_mut() {
            c.commit(&self.signals);
        }

        if let Some(from) = self.bus.take_pending(|_| 0) {
            for c in self.netlist.components_mut() {
                c.flush(from);
            }
            // A flush is progress even if no channel fired this cycle.
            self.idle_streak = 0;
        } else if fired == 0 {
            self.idle_streak += 1;
        } else {
            self.idle_streak = 0;
        }

        self.cycle += 1;
        Ok(())
    }

    /// True once every component reports idle.
    pub fn quiescent(&self) -> bool {
        self.netlist.components().iter().all(|c| c.is_idle())
    }

    /// Runs until quiescence.
    ///
    /// # Errors
    ///
    /// * [`SimError::CombinationalCycle`] — wire fixpoint diverged;
    /// * [`SimError::Deadlock`] — no progress for the watchdog window while
    ///   tokens remain in flight (e.g. the premature queue deadlock of paper
    ///   §V-C when fake tokens are disabled);
    /// * [`SimError::Timeout`] — the cycle budget ran out.
    pub fn run(&mut self) -> Result<SimReport, SimError> {
        while !self.quiescent() {
            if self.cycle >= self.config.max_cycles {
                return Err(SimError::Timeout {
                    max_cycles: self.config.max_cycles,
                });
            }
            self.step()?;
            if self.idle_streak >= self.config.watchdog {
                return Err(SimError::Deadlock {
                    cycle: self.cycle,
                    detail: self.netlist.occupancy_report(),
                });
            }
        }
        Ok(self.report())
    }

    /// The statistics accumulated so far.
    pub fn report(&self) -> SimReport {
        SimReport {
            cycles: self.cycle,
            transfers: self.transfers,
            stall_cycles: self.stall_cycles,
            squashes: self.bus.squash_count(),
            replayed_iters: self.bus.replayed_iters(),
            stalled_channels: self.stall_ranking(self.channel_stalls.len()),
        }
    }

    /// The `n` most-stalled channels with their stall cycle counts — the
    /// first place to look when a pipeline is slower than expected.
    pub fn stall_ranking(&self, n: usize) -> Vec<(crate::ChannelId, u64)> {
        let mut ranked: Vec<(crate::ChannelId, u64)> = self
            .channel_stalls
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (crate::ChannelId::from_index(i), c))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(n);
        ranked
    }

    /// Consumes the simulator, returning the netlist (e.g. to inspect
    /// collector sinks).
    pub fn into_netlist(self) -> Netlist {
        self.netlist
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("cycle", &self.cycle)
            .field("netlist", &self.netlist)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{BinOp, BinaryAlu, Buffer, Constant, Fork, IterSource, Sink};

    /// Builds `out = (i + 1) * i` for i in 0..n and collects the results.
    fn arithmetic_circuit(
        n: i64,
    ) -> (
        Netlist,
        SquashBus,
        std::rc::Rc<std::cell::RefCell<Vec<crate::Token>>>,
    ) {
        let mut net = Netlist::new();
        let bus = SquashBus::new();
        let src_out = net.channel();
        let f1 = net.channel();
        let f2 = net.channel();
        let one_trig_buf = net.channel();
        let one = net.channel();
        let sum = net.channel();
        let prod = net.channel();
        let rows = (0..n).map(|i| vec![i]).collect();
        net.add("src", IterSource::new(rows, vec![src_out], bus.clone()));
        net.add("fork", Fork::new(src_out, vec![f1, f2]));
        // Feed the constant from a forked copy through a buffer so each
        // iteration triggers exactly one constant emission.
        net.add("buf", Buffer::new(2, f2, one_trig_buf));
        net.add("one", Constant::new(1, one_trig_buf, one));
        net.add("add", BinaryAlu::with_latency(BinOp::Add, 1, f1, one, sum));
        // (i+1) * i needs i again: fork f1? Instead multiply sum by constant 2
        // via another constant; keep it simple: just square the sum.
        let two = net.channel();
        let sum_f1 = net.channel();
        let sum_f2 = net.channel();
        net.add("fork2", Fork::new(sum, vec![sum_f1, sum_f2]));
        net.add("two", Constant::new(2, sum_f2, two));
        net.add(
            "mul",
            BinaryAlu::with_latency(BinOp::Mul, 3, sum_f1, two, prod),
        );
        let (sink, store) = Sink::collecting(vec![prod]);
        net.add("sink", sink);
        (net, bus, store)
    }

    #[test]
    fn end_to_end_pipeline_computes_correctly() {
        let (net, bus, store) = arithmetic_circuit(8);
        let mut sim = Simulator::new(net, bus).expect("valid netlist");
        let report = sim.run().expect("no deadlock");
        let mut values: Vec<i64> = store.borrow().iter().map(|t| t.value).collect();
        values.sort_unstable();
        let expected: Vec<i64> = (0..8).map(|i| (i + 1) * 2).collect();
        assert_eq!(values, expected);
        assert!(report.cycles > 0);
        assert!(report.squashes == 0);
    }

    #[test]
    fn pipeline_overlaps_iterations() {
        // With II=1 at the source and pipelined units, n iterations should
        // take far fewer than n * total-latency cycles.
        let (net, bus, _) = arithmetic_circuit(64);
        let mut sim = Simulator::new(net, bus).expect("valid netlist");
        let report = sim.run().expect("no deadlock");
        assert!(
            report.cycles < 64 * 6,
            "pipeline must overlap iterations, took {} cycles",
            report.cycles
        );
        assert!(report.cycles >= 64, "at least one cycle per iteration");
    }

    #[test]
    fn empty_netlist_is_quiescent() {
        let net = Netlist::new();
        let mut sim = Simulator::new(net, SquashBus::new()).expect("empty is valid");
        let report = sim.run().expect("nothing to do");
        assert_eq!(report.cycles, 0);
    }

    #[test]
    fn watchdog_detects_starved_join() {
        use crate::components::Join;
        // A join whose second input never receives a token: the first input
        // token is held at an upstream buffer forever => deadlock... but note
        // tokens held in a buffer keep the netlist non-idle.
        let mut net = Netlist::new();
        let bus = SquashBus::new();
        let a = net.channel();
        let a_buf = net.channel();
        let b = net.channel();
        let b_buf = net.channel();
        let out = net.channel();
        net.add("src", IterSource::new(vec![vec![1]], vec![a], bus.clone()));
        net.add("buf_a", Buffer::new(1, a, a_buf));
        // Source for b emits zero iterations: join starves.
        net.add("src_b", IterSource::new(vec![], vec![b], bus.clone()));
        net.add("buf_b", Buffer::new(1, b, b_buf));
        net.add("join", Join::new(vec![a_buf, b_buf], out));
        net.add("sink", Sink::new(vec![out]));
        let mut sim = Simulator::new(net, bus)
            .expect("valid netlist")
            .with_config(SimConfig {
                max_cycles: 100_000,
                watchdog: 50,
            });
        let err = sim.run().expect_err("must deadlock");
        match err {
            SimError::Deadlock { detail, .. } => {
                assert!(
                    detail.contains("buf_a"),
                    "diagnostic names the stuck buffer: {detail}"
                );
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn stall_ranking_identifies_the_bottleneck() {
        use crate::components::Buffer;
        // A source feeding a capacity-1 buffer that drains into a slow
        // (3-cycle) ALU stage: the buffer's input channel stalls the most.
        let mut net = Netlist::new();
        let bus = SquashBus::new();
        let src = net.channel();
        let buffered = net.channel();
        let trig = net.channel();
        let one = net.channel();
        let sum = net.channel();
        let f1 = net.channel();
        let f2 = net.channel();
        net.add(
            "src",
            IterSource::new((0..32).map(|i| vec![i]).collect(), vec![src], bus.clone()),
        );
        net.add("fork", Fork::new(src, vec![f1, f2]));
        net.add("buf", Buffer::new(1, f2, trig));
        net.add("one", Constant::new(1, trig, one));
        net.add("slowbuf", Buffer::new(1, f1, buffered));
        net.add(
            "slow",
            BinaryAlu::with_latency(BinOp::Mul, 4, buffered, one, sum),
        );
        net.add("sink", Sink::new(vec![sum]));
        let mut sim = Simulator::new(net, bus).expect("valid");
        sim.run().expect("completes");
        let ranking = sim.stall_ranking(3);
        assert!(
            !ranking.is_empty(),
            "a 4-cycle unit at II 1 must stall something"
        );
        // Stall counts are sorted descending.
        for w in ranking.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn timeout_is_reported() {
        let (net, bus, _) = arithmetic_circuit(64);
        let mut sim = Simulator::new(net, bus)
            .expect("valid")
            .with_config(SimConfig {
                max_cycles: 3,
                watchdog: 1000,
            });
        assert!(matches!(
            sim.run(),
            Err(SimError::Timeout { max_cycles: 3 })
        ));
    }
}
