//! The cycle-accurate simulation engine.
//!
//! Each clock cycle proceeds in three phases:
//!
//! 1. **Wire fixpoint** — components' [`eval`](crate::Component::eval)
//!    functions run until no `valid`/`ready`/data wire changes. `valid` and
//!    `ready` are monotone within a cycle, so the fixpoint exists and the
//!    iteration count is bounded; exceeding the bound means a combinational
//!    cycle (a feedback path without an elastic buffer) and is reported as
//!    [`SimError::CombinationalCycle`], naming the channels that were still
//!    churning. Two interchangeable schedulers compute the fixpoint (see
//!    [`Scheduler`]); they produce bit-identical wire states.
//! 2. **Commit** — every component's [`commit`](crate::Component::commit)
//!    observes which channels fired and updates its registers, reporting
//!    whether any eval-visible state changed. The changed set seeds the next
//!    cycle's event-driven dirty set and feeds the no-progress watchdog.
//! 3. **Squash application** — if a disambiguation controller posted a squash
//!    on the [`SquashBus`], the engine bumps the epoch, calls
//!    [`flush`](crate::Component::flush) on every component (dropping all
//!    tokens of the squashed iterations), and lets the iteration source
//!    rewind. This models the broadcast pipeline flush of the paper's mux +
//!    squash signal. The cycle after a flush always runs the dense sweep:
//!    a flush rewrites state (including the bus epoch some evals read)
//!    behind the dirty-set bookkeeping's back.
//!
//! ## Why partial re-evaluation is sound
//!
//! A component's `eval` is a pure function of its sequential state and the
//! wires it reads (its inputs' `valid`/data, its outputs' `ready`). The
//! event scheduler keeps the previous cycle's fixpoint wires and re-runs
//! only components whose state changed at commit, clearing and re-deriving
//! exactly the wires each re-run component owns (its outputs' `valid`/data,
//! its inputs' `ready`). Any wire it changes wakes the one neighbor that
//! reads that wire, so by induction every wire not re-derived is the value
//! its owner would re-derive — the worklist converges to the same unique
//! fixpoint the dense sweep computes from reset.
//!
//! The run ends when every component is idle (quiescence), when the cycle
//! budget is exhausted, or when the no-progress watchdog declares deadlock —
//! the condition the paper's fake tokens exist to prevent (§V-C).

use std::collections::VecDeque;

use crate::component::Ports;
use crate::error::SimError;
use crate::netlist::Netlist;
use crate::signal::Signals;
use crate::squash::SquashBus;
use crate::stats::SimReport;
use crate::token::Token;
use crate::trace::TraceRecorder;

/// Which algorithm computes the per-cycle wire fixpoint.
///
/// Both schedulers reach the same fixpoint on every well-formed (buffered)
/// netlist, so they produce identical [`SimReport`]s; the event-driven one
/// skips re-evaluating the (typically large) stalled part of the circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Reset every wire and sweep every component until convergence — the
    /// reference algorithm, O(components) per sweep.
    Dense,
    /// Dirty-set worklist seeded by the components whose previous commit
    /// changed state, propagating wake-ups along the channel graph; wires
    /// warm-start from the previous cycle's fixpoint.
    #[default]
    EventDriven,
}

/// Tuning knobs for a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Hard upper bound on simulated cycles.
    pub max_cycles: u64,
    /// Declare deadlock after this many consecutive cycles in which no
    /// channel transferred, no component changed internal state, and no
    /// squash flushed — while tokens are still in flight.
    pub watchdog: u64,
    /// Fixpoint scheduler; [`Scheduler::EventDriven`] unless overridden.
    pub scheduler: Scheduler,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_cycles: 2_000_000,
            watchdog: 1_000,
            scheduler: Scheduler::default(),
        }
    }
}

/// Drives a [`Netlist`] to quiescence.
pub struct Simulator {
    netlist: Netlist,
    signals: Signals,
    bus: SquashBus,
    config: SimConfig,
    cycle: u64,
    transfers: u64,
    stall_cycles: u64,
    idle_streak: u64,
    recorder: Option<TraceRecorder>,
    channel_stalls: Vec<u64>,
    /// Static per-node port lists (`Component::ports` allocates; cache once).
    ports: Vec<Ports>,
    /// `producer_of[ch]` / `consumer_of[ch]`: the unique endpoints of every
    /// channel, as raw node indices — the wake-up adjacency.
    producer_of: Vec<usize>,
    consumer_of: Vec<usize>,
    /// `restless[node]`: did the node's last commit change internal state at
    /// all? Keeps the node in the next commit set (a settling pipeline
    /// shifts for several cycles after its last handshake) and feeds the
    /// no-progress watchdog.
    restless: Vec<bool>,
    /// `eval_seed[node]`: did the node's last commit change state its `eval`
    /// *reads* ([`Component::eval_invalidated`])? Strictly a subset of
    /// `restless` — invisible internal motion (a RAM delay line ticking)
    /// keeps a node restless without forcing a re-evaluation. Kept as a
    /// list (ascending, at most one entry per node) rather than a bitmap so
    /// seeding the worklist costs O(|seeds|), not O(nodes), per cycle.
    seed_list: Vec<usize>,
    /// Nodes whose [`Component::fire_driven_commit`] audit allows skipping
    /// commit when settled; the complement is committed every cycle.
    fire_driven: Vec<bool>,
    /// Scratch marks for the per-cycle commit set.
    commit_mark: Vec<bool>,
    /// Cached `is_idle` per node plus the count of non-idle nodes: a node's
    /// idleness only changes when its commit reports a state change (eval
    /// never mutates) or on a flush, so quiescence is O(1) per cycle.
    idle_cache: Vec<bool>,
    active: usize,
    /// Worklist state for the event-driven fixpoint.
    queue: VecDeque<usize>,
    queued: Vec<bool>,
    /// Run the dense sweep next cycle (first cycle, and after every flush).
    dense_next: bool,
    /// Scratch buffers for per-node wire snapshots.
    snap_out: Vec<(bool, Option<Token>)>,
    snap_in: Vec<bool>,
    /// Scratch list of the channels that fired this cycle.
    fired_scratch: Vec<usize>,
}

impl Simulator {
    /// Creates a simulator for `netlist`, validating its structure.
    ///
    /// The `bus` must be the same squash bus handed to the netlist's
    /// iteration source and disambiguation controller (if any); pass a fresh
    /// bus for circuits without squash support.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Structure`] if the netlist has dangling or
    /// multiply-driven channels.
    pub fn new(netlist: Netlist, bus: SquashBus) -> Result<Self, SimError> {
        netlist.validate()?;
        let signals = Signals::new(netlist.channel_count());
        let channel_stalls = vec![0; netlist.channel_count()];
        let ports: Vec<Ports> = netlist.components().iter().map(|c| c.ports()).collect();
        let (producer_of, consumer_of) = netlist
            .unique_endpoints()
            .map(|(p, c)| {
                (
                    p.into_iter().map(|n| n.index()).collect(),
                    c.into_iter().map(|n| n.index()).collect(),
                )
            })
            .expect("validated netlist has unique endpoints");
        let nodes = netlist.node_count();
        let fire_driven: Vec<bool> = netlist
            .components()
            .iter()
            .map(|c| c.fire_driven_commit())
            .collect();
        let idle_cache: Vec<bool> = netlist.components().iter().map(|c| c.is_idle()).collect();
        let active = idle_cache.iter().filter(|&&i| !i).count();
        Ok(Simulator {
            netlist,
            signals,
            bus,
            config: SimConfig::default(),
            cycle: 0,
            transfers: 0,
            stall_cycles: 0,
            idle_streak: 0,
            recorder: None,
            channel_stalls,
            ports,
            producer_of,
            consumer_of,
            restless: vec![true; nodes],
            seed_list: (0..nodes).collect(),
            fire_driven,
            commit_mark: vec![false; nodes],
            idle_cache,
            active,
            queue: VecDeque::new(),
            queued: vec![false; nodes],
            dense_next: true,
            snap_out: Vec::new(),
            snap_in: Vec::new(),
            fired_scratch: Vec::new(),
        })
    }

    /// Replaces the default configuration.
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a channel trace recorder; it samples every cycle from now
    /// on. See [`TraceRecorder`].
    pub fn attach_recorder(&mut self, recorder: TraceRecorder) {
        self.recorder = Some(recorder);
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&TraceRecorder> {
        self.recorder.as_ref()
    }

    /// Detaches and returns the recorder.
    pub fn take_recorder(&mut self) -> Option<TraceRecorder> {
        self.recorder.take()
    }

    /// Current cycle number.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Read access to the simulated netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Executes one clock cycle.
    ///
    /// The wire fixpoint runs under the configured [`Scheduler`]; stall and
    /// transfer statistics are sampled *at the fixpoint, before commit*, by
    /// the same code path in both modes, so the two schedulers' reports are
    /// byte-identical.
    ///
    /// # Errors
    ///
    /// [`SimError::CombinationalCycle`] if the wire fixpoint diverges.
    pub fn step(&mut self) -> Result<(), SimError> {
        if self.config.scheduler == Scheduler::Dense || self.dense_next {
            self.fixpoint_dense()?;
            self.dense_next = false;
        } else {
            self.fixpoint_event()?;
        }

        // Sample transfer/stall statistics at the fixpoint, in one pass that
        // also collects the fired channel set for the commit scheduler.
        self.fired_scratch.clear();
        let (fired, stalled) = self
            .signals
            .sample_cycle(&mut self.channel_stalls, &mut self.fired_scratch);
        self.transfers += fired;
        self.stall_cycles += stalled;
        if let Some(rec) = &mut self.recorder {
            rec.sample(&self.signals);
        }

        // Commit phase (identical in both schedulers). A settled component —
        // previous commit reported no change, no adjacent channel fired this
        // cycle — whose audit says its commit is fire-driven would return
        // `false` without mutating anything, so the virtual call is skipped
        // outright. Everything else commits, in index order.
        for (i, &fd) in self.fire_driven.iter().enumerate() {
            self.commit_mark[i] = !fd || self.restless[i];
        }
        for k in 0..self.fired_scratch.len() {
            let idx = self.fired_scratch[k];
            self.commit_mark[self.producer_of[idx]] = true;
            self.commit_mark[self.consumer_of[idx]] = true;
        }
        let mut any_changed = false;
        let comps = self.netlist.components_mut();
        for (i, comp) in comps.iter_mut().enumerate() {
            if !self.commit_mark[i] {
                self.restless[i] = false;
                continue;
            }
            self.commit_mark[i] = false;
            let changed = comp.commit(&self.signals);
            self.restless[i] = changed;
            if changed && comp.eval_invalidated() {
                self.seed_list.push(i);
            }
            any_changed |= changed;
            if changed {
                let idle = comp.is_idle();
                if idle != self.idle_cache[i] {
                    self.idle_cache[i] = idle;
                    if idle {
                        self.active -= 1;
                    } else {
                        self.active += 1;
                    }
                }
            }
        }

        let flushed = if let Some(from) = self.bus.take_pending(|_| 0) {
            for c in self.netlist.components_mut() {
                c.flush(from);
            }
            // A flush rewrites state (and the bus epoch some evals read)
            // behind the dirty set's back: rebuild densely next cycle and
            // re-derive everything the incremental bookkeeping caches.
            self.dense_next = true;
            self.restless.iter_mut().for_each(|r| *r = true);
            // The seeds recorded above are stale; the forced dense cycle
            // rebuilds all wires and re-derives the list from its commits.
            self.seed_list.clear();
            self.refresh_idle_cache();
            true
        } else {
            false
        };

        // Progress = a transfer, a flush, or any internal state change (a
        // long-latency unit draining counts, so slow quiescence is not
        // mistaken for deadlock).
        if flushed || fired > 0 || any_changed {
            self.idle_streak = 0;
        } else {
            self.idle_streak += 1;
        }

        self.cycle += 1;
        Ok(())
    }

    /// Reference fixpoint: reset all wires, sweep every component until
    /// nothing changes.
    fn fixpoint_dense(&mut self) -> Result<(), SimError> {
        // The dense sweep evaluates everything; pending seeds are subsumed.
        self.seed_list.clear();
        self.signals.reset();
        // Monotone fixpoint: each sweep can only raise valid/ready wires, so
        // the sweep count is bounded by the number of wires plus slack for
        // data rewrites by arbitrating components.
        let budget = 2 * self.signals.len() + self.netlist.node_count() + 8;
        for _ in 0..budget {
            for c in self.netlist.components() {
                c.eval(&mut self.signals);
            }
            if !self.signals.take_changed() {
                return Ok(());
            }
        }
        Err(self.diagnose_divergence())
    }

    /// Event-driven fixpoint: warm-start from the previous cycle's wires and
    /// re-evaluate only components reachable from the dirty set.
    fn fixpoint_event(&mut self) -> Result<(), SimError> {
        debug_assert!(self.queue.is_empty());
        // Seed from the nodes whose last commit changed state their eval
        // reads (drained here; the commit scheduler's companion `restless`
        // set is untouched).
        for k in 0..self.seed_list.len() {
            let i = self.seed_list[k];
            self.queue.push_back(i);
            self.queued[i] = true;
        }
        self.seed_list.clear();
        // Budget in *single-node evals*: the dense budget is in whole-netlist
        // sweeps, so scale by the node count to give the worklist at least as
        // much work before declaring divergence.
        let nodes = self.netlist.node_count();
        let sweep = 2 * self.signals.len() + nodes + 8;
        let mut budget = sweep.saturating_mul(nodes.max(1));
        while let Some(n) = self.queue.pop_front() {
            self.queued[n] = false;
            if budget == 0 {
                self.queue.clear();
                self.queued.iter_mut().for_each(|q| *q = false);
                return Err(self.diagnose_divergence());
            }
            budget -= 1;
            self.reeval_node(n);
        }
        // Re-derived wires set the global change flag; clear it so later
        // dense cycles start clean.
        self.signals.take_changed();
        Ok(())
    }

    /// Re-evaluates one node: snapshot the wires it owns (outputs' drive,
    /// inputs' ready), clear them, run `eval`, and wake the unique neighbor
    /// behind every wire that came out different.
    fn reeval_node(&mut self, n: usize) {
        self.snap_out.clear();
        self.snap_in.clear();
        for k in 0..self.ports[n].outputs.len() {
            let ch = self.ports[n].outputs[k];
            self.snap_out.push(self.signals.drive_state(ch));
            self.signals.clear_drive(ch);
        }
        for k in 0..self.ports[n].inputs.len() {
            let ch = self.ports[n].inputs[k];
            self.snap_in.push(self.signals.is_ready(ch));
            self.signals.clear_ready(ch);
        }
        self.netlist.components()[n].eval(&mut self.signals);
        for k in 0..self.ports[n].outputs.len() {
            let ch = self.ports[n].outputs[k];
            if self.signals.drive_state(ch) != self.snap_out[k] {
                self.wake(self.consumer_of[ch.index()]);
            }
        }
        for k in 0..self.ports[n].inputs.len() {
            let ch = self.ports[n].inputs[k];
            if self.signals.is_ready(ch) != self.snap_in[k] {
                self.wake(self.producer_of[ch.index()]);
            }
        }
    }

    fn wake(&mut self, n: usize) {
        if !self.queued[n] {
            self.queued[n] = true;
            self.queue.push_back(n);
        }
    }

    /// Shared divergence diagnosis: rerun the dense fixpoint from reset,
    /// then record one extra sweep — the wires still moving after the full
    /// budget are the unbuffered feedback path. Running the identical dense
    /// procedure from both schedulers guarantees they name the same channel
    /// set.
    fn diagnose_divergence(&mut self) -> SimError {
        self.signals.reset();
        let budget = 2 * self.signals.len() + self.netlist.node_count() + 8;
        for _ in 0..budget {
            for c in self.netlist.components() {
                c.eval(&mut self.signals);
            }
            if !self.signals.take_changed() {
                break;
            }
        }
        self.signals.record_changes();
        for c in self.netlist.components() {
            c.eval(&mut self.signals);
        }
        self.signals.take_changed();
        let channels = self.signals.take_recorded();
        // The warm-start wires are garbage now; any further step (a caller
        // ignoring the error) must rebuild densely.
        self.dense_next = true;
        SimError::CombinationalCycle {
            cycle: self.cycle,
            channels,
        }
    }

    /// Recomputes the idle cache from scratch (after a flush, whose state
    /// rewrites bypass commit's change reporting).
    fn refresh_idle_cache(&mut self) {
        for (i, c) in self.netlist.components().iter().enumerate() {
            self.idle_cache[i] = c.is_idle();
        }
        self.active = self.idle_cache.iter().filter(|&&i| !i).count();
    }

    /// True once every component reports idle.
    ///
    /// Served from the incrementally maintained idle cache: a component's
    /// idleness only moves when its commit reports a state change (`eval`
    /// takes `&self`) or when a flush rewrites state, and both paths update
    /// the cache.
    pub fn quiescent(&self) -> bool {
        debug_assert_eq!(
            self.active,
            self.netlist
                .components()
                .iter()
                .filter(|c| !c.is_idle())
                .count(),
            "idle cache out of sync"
        );
        self.active == 0
    }

    /// Runs until quiescence.
    ///
    /// # Errors
    ///
    /// * [`SimError::CombinationalCycle`] — wire fixpoint diverged;
    /// * [`SimError::Deadlock`] — no progress for the watchdog window while
    ///   tokens remain in flight (e.g. the premature queue deadlock of paper
    ///   §V-C when fake tokens are disabled);
    /// * [`SimError::Timeout`] — the cycle budget ran out.
    pub fn run(&mut self) -> Result<SimReport, SimError> {
        while !self.quiescent() {
            if self.cycle >= self.config.max_cycles {
                return Err(SimError::Timeout {
                    max_cycles: self.config.max_cycles,
                });
            }
            self.step()?;
            if self.idle_streak >= self.config.watchdog {
                return Err(SimError::Deadlock {
                    cycle: self.cycle,
                    detail: self.netlist.occupancy_report(),
                });
            }
        }
        Ok(self.report())
    }

    /// The statistics accumulated so far.
    pub fn report(&self) -> SimReport {
        SimReport {
            cycles: self.cycle,
            transfers: self.transfers,
            stall_cycles: self.stall_cycles,
            squashes: self.bus.squash_count(),
            replayed_iters: self.bus.replayed_iters(),
            stalled_channels: self.stall_ranking(self.channel_stalls.len()),
        }
    }

    /// The `n` most-stalled channels with their stall cycle counts — the
    /// first place to look when a pipeline is slower than expected.
    pub fn stall_ranking(&self, n: usize) -> Vec<(crate::ChannelId, u64)> {
        let mut ranked: Vec<(crate::ChannelId, u64)> = self
            .channel_stalls
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (crate::ChannelId::from_index(i), c))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(n);
        ranked
    }

    /// Consumes the simulator, returning the netlist (e.g. to inspect
    /// collector sinks).
    pub fn into_netlist(self) -> Netlist {
        self.netlist
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("cycle", &self.cycle)
            .field("netlist", &self.netlist)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{BinOp, BinaryAlu, Buffer, Constant, Fork, IterSource, Sink};

    /// Builds `out = (i + 1) * i` for i in 0..n and collects the results.
    fn arithmetic_circuit(
        n: i64,
    ) -> (
        Netlist,
        SquashBus,
        std::rc::Rc<std::cell::RefCell<Vec<crate::Token>>>,
    ) {
        let mut net = Netlist::new();
        let bus = SquashBus::new();
        let src_out = net.channel();
        let f1 = net.channel();
        let f2 = net.channel();
        let one_trig_buf = net.channel();
        let one = net.channel();
        let sum = net.channel();
        let prod = net.channel();
        let rows = (0..n).map(|i| vec![i]).collect();
        net.add("src", IterSource::new(rows, vec![src_out], bus.clone()));
        net.add("fork", Fork::new(src_out, vec![f1, f2]));
        // Feed the constant from a forked copy through a buffer so each
        // iteration triggers exactly one constant emission.
        net.add("buf", Buffer::new(2, f2, one_trig_buf));
        net.add("one", Constant::new(1, one_trig_buf, one));
        net.add("add", BinaryAlu::with_latency(BinOp::Add, 1, f1, one, sum));
        // (i+1) * i needs i again: fork f1? Instead multiply sum by constant 2
        // via another constant; keep it simple: just square the sum.
        let two = net.channel();
        let sum_f1 = net.channel();
        let sum_f2 = net.channel();
        net.add("fork2", Fork::new(sum, vec![sum_f1, sum_f2]));
        net.add("two", Constant::new(2, sum_f2, two));
        net.add(
            "mul",
            BinaryAlu::with_latency(BinOp::Mul, 3, sum_f1, two, prod),
        );
        let (sink, store) = Sink::collecting(vec![prod]);
        net.add("sink", sink);
        (net, bus, store)
    }

    #[test]
    fn end_to_end_pipeline_computes_correctly() {
        let (net, bus, store) = arithmetic_circuit(8);
        let mut sim = Simulator::new(net, bus).expect("valid netlist");
        let report = sim.run().expect("no deadlock");
        let mut values: Vec<i64> = store.borrow().iter().map(|t| t.value).collect();
        values.sort_unstable();
        let expected: Vec<i64> = (0..8).map(|i| (i + 1) * 2).collect();
        assert_eq!(values, expected);
        assert!(report.cycles > 0);
        assert!(report.squashes == 0);
    }

    #[test]
    fn pipeline_overlaps_iterations() {
        // With II=1 at the source and pipelined units, n iterations should
        // take far fewer than n * total-latency cycles.
        let (net, bus, _) = arithmetic_circuit(64);
        let mut sim = Simulator::new(net, bus).expect("valid netlist");
        let report = sim.run().expect("no deadlock");
        assert!(
            report.cycles < 64 * 6,
            "pipeline must overlap iterations, took {} cycles",
            report.cycles
        );
        assert!(report.cycles >= 64, "at least one cycle per iteration");
    }

    #[test]
    fn empty_netlist_is_quiescent() {
        let net = Netlist::new();
        let mut sim = Simulator::new(net, SquashBus::new()).expect("empty is valid");
        let report = sim.run().expect("nothing to do");
        assert_eq!(report.cycles, 0);
    }

    #[test]
    fn watchdog_detects_starved_join() {
        use crate::components::Join;
        // A join whose second input never receives a token: the first input
        // token is held at an upstream buffer forever => deadlock... but note
        // tokens held in a buffer keep the netlist non-idle.
        let mut net = Netlist::new();
        let bus = SquashBus::new();
        let a = net.channel();
        let a_buf = net.channel();
        let b = net.channel();
        let b_buf = net.channel();
        let out = net.channel();
        net.add("src", IterSource::new(vec![vec![1]], vec![a], bus.clone()));
        net.add("buf_a", Buffer::new(1, a, a_buf));
        // Source for b emits zero iterations: join starves.
        net.add("src_b", IterSource::new(vec![], vec![b], bus.clone()));
        net.add("buf_b", Buffer::new(1, b, b_buf));
        net.add("join", Join::new(vec![a_buf, b_buf], out));
        net.add("sink", Sink::new(vec![out]));
        let mut sim = Simulator::new(net, bus)
            .expect("valid netlist")
            .with_config(SimConfig {
                max_cycles: 100_000,
                watchdog: 50,
                ..SimConfig::default()
            });
        let err = sim.run().expect_err("must deadlock");
        match err {
            SimError::Deadlock { detail, .. } => {
                assert!(
                    detail.contains("buf_a"),
                    "diagnostic names the stuck buffer: {detail}"
                );
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn stall_ranking_identifies_the_bottleneck() {
        use crate::components::Buffer;
        // A source feeding a capacity-1 buffer that drains into a slow
        // (3-cycle) ALU stage: the buffer's input channel stalls the most.
        let mut net = Netlist::new();
        let bus = SquashBus::new();
        let src = net.channel();
        let buffered = net.channel();
        let trig = net.channel();
        let one = net.channel();
        let sum = net.channel();
        let f1 = net.channel();
        let f2 = net.channel();
        net.add(
            "src",
            IterSource::new((0..32).map(|i| vec![i]).collect(), vec![src], bus.clone()),
        );
        net.add("fork", Fork::new(src, vec![f1, f2]));
        net.add("buf", Buffer::new(1, f2, trig));
        net.add("one", Constant::new(1, trig, one));
        net.add("slowbuf", Buffer::new(1, f1, buffered));
        net.add(
            "slow",
            BinaryAlu::with_latency(BinOp::Mul, 4, buffered, one, sum),
        );
        net.add("sink", Sink::new(vec![sum]));
        let mut sim = Simulator::new(net, bus).expect("valid");
        sim.run().expect("completes");
        let ranking = sim.stall_ranking(3);
        assert!(
            !ranking.is_empty(),
            "a 4-cycle unit at II 1 must stall something"
        );
        // Stall counts are sorted descending.
        for w in ranking.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn timeout_is_reported() {
        let (net, bus, _) = arithmetic_circuit(64);
        let mut sim = Simulator::new(net, bus)
            .expect("valid")
            .with_config(SimConfig {
                max_cycles: 3,
                watchdog: 1000,
                ..SimConfig::default()
            });
        assert!(matches!(
            sim.run(),
            Err(SimError::Timeout { max_cycles: 3 })
        ));
    }
}
