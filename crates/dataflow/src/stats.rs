//! Simulation statistics and reports.

use std::fmt;

use crate::signal::ChannelId;

/// Summary of a completed simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Total clock cycles executed until quiescence.
    pub cycles: u64,
    /// Total number of channel transfers (token movements).
    pub transfers: u64,
    /// Total channel-cycles spent stalled (valid but not ready).
    pub stall_cycles: u64,
    /// Number of pipeline squashes applied.
    pub squashes: u64,
    /// Total iterations that were replayed due to squashes.
    pub replayed_iters: u64,
    /// Per-channel stall attribution: every channel that spent at least one
    /// cycle stalled (valid but not ready), sorted by stall count
    /// descending. The measured counterpart of the PV400 critical cycle —
    /// where backpressure actually bit, channel by channel.
    pub stalled_channels: Vec<(ChannelId, u64)>,
}

impl SimReport {
    /// Average transfers per cycle — a crude activity measure.
    pub fn activity(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.transfers as f64 / self.cycles as f64
        }
    }

    /// The `n` most-stalled channels.
    pub fn top_stalled(&self, n: usize) -> &[(ChannelId, u64)] {
        &self.stalled_channels[..n.min(self.stalled_channels.len())]
    }

    /// Field-by-field comparison against `other`, naming the first few
    /// mismatches — `None` when the reports are identical. Built for the
    /// scheduler-equivalence tests, where "`assert_eq!` on two 40-line
    /// structs failed" is useless without knowing *which* counter diverged.
    pub fn diff(&self, other: &SimReport) -> Option<String> {
        let mut lines = Vec::new();
        if self.cycles != other.cycles {
            lines.push(format!("cycles: {} vs {}", self.cycles, other.cycles));
        }
        if self.transfers != other.transfers {
            lines.push(format!(
                "transfers: {} vs {}",
                self.transfers, other.transfers
            ));
        }
        if self.stall_cycles != other.stall_cycles {
            lines.push(format!(
                "stall_cycles: {} vs {}",
                self.stall_cycles, other.stall_cycles
            ));
        }
        if self.squashes != other.squashes {
            lines.push(format!("squashes: {} vs {}", self.squashes, other.squashes));
        }
        if self.replayed_iters != other.replayed_iters {
            lines.push(format!(
                "replayed_iters: {} vs {}",
                self.replayed_iters, other.replayed_iters
            ));
        }
        if self.stalled_channels != other.stalled_channels {
            let first = self
                .stalled_channels
                .iter()
                .zip(&other.stalled_channels)
                .find(|(a, b)| a != b);
            lines.push(match first {
                Some((a, b)) => format!(
                    "stalled_channels: first mismatch {}={} vs {}={} (lengths {} vs {})",
                    a.0,
                    a.1,
                    b.0,
                    b.1,
                    self.stalled_channels.len(),
                    other.stalled_channels.len()
                ),
                None => format!(
                    "stalled_channels: lengths {} vs {}",
                    self.stalled_channels.len(),
                    other.stalled_channels.len()
                ),
            });
        }
        if lines.is_empty() {
            None
        } else {
            Some(lines.join("; "))
        }
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles, {} transfers ({:.2}/cycle), {} stall-cycles, {} squash(es), {} iter(s) replayed",
            self.cycles,
            self.transfers,
            self.activity(),
            self.stall_cycles,
            self.squashes,
            self.replayed_iters
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity_handles_zero_cycles() {
        let r = SimReport::default();
        assert_eq!(r.activity(), 0.0);
    }

    #[test]
    fn diff_names_the_divergent_field() {
        let a = SimReport {
            cycles: 10,
            transfers: 20,
            stall_cycles: 3,
            squashes: 0,
            replayed_iters: 0,
            stalled_channels: vec![(ChannelId(1), 3)],
        };
        assert_eq!(a.diff(&a), None);
        let mut b = a.clone();
        b.stall_cycles = 4;
        b.stalled_channels = vec![(ChannelId(1), 4)];
        let d = a.diff(&b).expect("differs");
        assert!(d.contains("stall_cycles: 3 vs 4"), "{d}");
        assert!(d.contains("stalled_channels"), "{d}");
        assert!(!d.contains("cycles: 10"), "unchanged fields omitted: {d}");
    }

    #[test]
    fn display_mentions_squashes() {
        let r = SimReport {
            cycles: 10,
            transfers: 20,
            stall_cycles: 3,
            squashes: 2,
            replayed_iters: 5,
            stalled_channels: vec![(ChannelId(1), 3)],
        };
        let s = r.to_string();
        assert!(s.contains("10 cycles"));
        assert!(s.contains("2 squash"));
    }
}
