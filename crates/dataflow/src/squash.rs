//! Squash coordination between a disambiguation controller and the engine.
//!
//! When premature value validation detects that a later-iteration operation
//! consumed stale data, the *entire pipeline behind it* must be flushed and
//! those iterations replayed (paper §IV-A). In hardware this is a broadcast
//! squash wire; in the simulator it is a small shared mailbox: the memory
//! controller posts a squash request during `commit`, and the engine applies
//! it at the end of the cycle by bumping the epoch, flushing every component,
//! and rewinding the iteration source.

use std::cell::Cell;
use std::rc::Rc;

/// Shared squash mailbox. Cheap to clone; all clones observe the same state.
///
/// All fields are plain [`Cell`]s: the engine polls [`take_pending`] every
/// cycle and iteration sources read [`epoch`] on every re-evaluation, so the
/// mailbox sits on the simulation hot path — `Cell` reads avoid `RefCell`'s
/// borrow-flag traffic (and its reentrancy panics) entirely.
///
/// [`take_pending`]: SquashBus::take_pending
/// [`epoch`]: SquashBus::epoch
#[derive(Debug, Clone, Default)]
pub struct SquashBus {
    inner: Rc<BusState>,
}

#[derive(Debug, Default)]
struct BusState {
    epoch: Cell<u32>,
    pending: Cell<Option<u64>>,
    squashes: Cell<u64>,
    replayed_iters: Cell<u64>,
}

impl SquashBus {
    /// Creates a bus in epoch 0 with no pending squash.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current squash epoch. Tokens issued by sources carry this epoch.
    pub fn epoch(&self) -> u32 {
        self.inner.epoch.get()
    }

    /// Posts a squash restarting execution from `from_iter`.
    ///
    /// If a squash is already pending this cycle, the earlier restart point
    /// wins (a single flush from the minimum faulting iteration subsumes
    /// both).
    pub fn post(&self, from_iter: u64) {
        let cur = self.inner.pending.get();
        self.inner.pending.set(Some(match cur {
            Some(cur) => cur.min(from_iter),
            None => from_iter,
        }));
    }

    /// True if a squash has been posted and not yet applied.
    pub fn has_pending(&self) -> bool {
        self.inner.pending.get().is_some()
    }

    /// Engine side: takes the pending squash, if any, bumping the epoch and
    /// recording statistics. Returns the iteration to restart from.
    pub fn take_pending(&self, replay_span: impl FnOnce(u64) -> u64) -> Option<u64> {
        let from = self.inner.pending.take()?;
        self.inner.epoch.set(self.inner.epoch.get() + 1);
        self.inner.squashes.set(self.inner.squashes.get() + 1);
        let span = replay_span(from);
        self.inner
            .replayed_iters
            .set(self.inner.replayed_iters.get() + span);
        Some(from)
    }

    /// Total number of squashes applied so far.
    pub fn squash_count(&self) -> u64 {
        self.inner.squashes.get()
    }

    /// Total number of iterations that had to be replayed.
    pub fn replayed_iters(&self) -> u64 {
        self.inner.replayed_iters.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_and_take_round_trip() {
        let bus = SquashBus::new();
        assert!(!bus.has_pending());
        bus.post(7);
        assert!(bus.has_pending());
        let from = bus.take_pending(|f| 10 - f);
        assert_eq!(from, Some(7));
        assert_eq!(bus.epoch(), 1);
        assert_eq!(bus.squash_count(), 1);
        assert_eq!(bus.replayed_iters(), 3);
        assert!(!bus.has_pending());
    }

    #[test]
    fn earlier_restart_wins_when_double_posted() {
        let bus = SquashBus::new();
        bus.post(9);
        bus.post(4);
        bus.post(12);
        assert_eq!(bus.take_pending(|_| 0), Some(4));
    }

    #[test]
    fn clones_share_state() {
        let a = SquashBus::new();
        let b = a.clone();
        b.post(2);
        assert!(a.has_pending());
        a.take_pending(|_| 1);
        assert_eq!(b.epoch(), 1);
    }
}
