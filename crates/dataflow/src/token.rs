//! Tokens flowing through elastic channels.
//!
//! Every value travelling through a dataflow circuit is a [`Token`]: a scalar
//! payload plus a [`Tag`] identifying which loop iteration produced it and in
//! which squash *epoch*. Tags are what make pipeline squashes implementable:
//! when premature value validation detects a mis-speculated load, every token
//! belonging to an iteration at or beyond the faulting one is flushed, and the
//! iteration source re-issues those iterations under a new epoch.

use std::fmt;

/// Scalar payload carried by a token.
///
/// The simulator models all datapath values as 64-bit signed integers, which
/// is wide enough for the paper's kernels (32-bit data plus index arithmetic)
/// while keeping the memory model exact (no floating-point rounding concerns
/// when comparing a circuit run against its golden model).
pub type Value = i64;

/// Identifies the loop iteration (flattened over the whole nest) and squash
/// epoch a token belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tag {
    /// Flattened iteration number: position of this iteration in the original
    /// sequential program order, counted over the entire loop nest.
    pub iter: u64,
    /// Squash epoch. Incremented once per pipeline squash; tokens re-issued
    /// after a squash carry the new epoch so stale and fresh tokens can never
    /// be confused.
    pub epoch: u32,
}

impl Tag {
    /// Creates a tag for `iter` in epoch 0.
    ///
    /// ```
    /// use prevv_dataflow::Tag;
    /// let t = Tag::new(7);
    /// assert_eq!(t.iter, 7);
    /// assert_eq!(t.epoch, 0);
    /// ```
    pub fn new(iter: u64) -> Self {
        Tag { iter, epoch: 0 }
    }

    /// Creates a tag with an explicit epoch.
    pub fn with_epoch(iter: u64, epoch: u32) -> Self {
        Tag { iter, epoch }
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}e{}", self.iter, self.epoch)
    }
}

/// A value plus its tag: the unit of exchange on every channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Token {
    /// Scalar payload.
    pub value: Value,
    /// Iteration/epoch identification.
    pub tag: Tag,
}

impl Token {
    /// Creates a token carrying `value` for iteration `iter` in epoch 0.
    ///
    /// ```
    /// use prevv_dataflow::Token;
    /// let t = Token::new(42, 3);
    /// assert_eq!(t.value, 42);
    /// assert_eq!(t.tag.iter, 3);
    /// ```
    pub fn new(value: Value, iter: u64) -> Self {
        Token {
            value,
            tag: Tag::new(iter),
        }
    }

    /// Creates a token with a fully specified tag.
    pub fn tagged(value: Value, tag: Tag) -> Self {
        Token { value, tag }
    }

    /// Returns a copy of this token with a different payload but the same tag.
    pub fn with_value(self, value: Value) -> Self {
        Token { value, ..self }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.value, self.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_ordering_is_iteration_major() {
        let a = Tag::with_epoch(1, 5);
        let b = Tag::with_epoch(2, 0);
        assert!(a < b, "iteration dominates epoch in ordering");
    }

    #[test]
    fn token_with_value_preserves_tag() {
        let t = Token::tagged(10, Tag::with_epoch(4, 2));
        let u = t.with_value(99);
        assert_eq!(u.value, 99);
        assert_eq!(u.tag, t.tag);
    }

    #[test]
    fn display_is_compact() {
        let t = Token::new(-3, 8);
        assert_eq!(t.to_string(), "-3@i8e0");
    }
}
