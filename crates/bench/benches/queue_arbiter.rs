//! Microbenchmarks of the PreVV data structures: premature queue
//! operations and the arbiter's head-to-tail validation walk at the paper's
//! two depths (the software analogue of the "search burden" the paper's CP
//! numbers reflect).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prevv::dataflow::Tag;
use prevv::ir::MemOpKind;
use prevv::prevv_core_crate::{Arbiter, PrematureQueue, PrematureRecord};

fn filled_queue(depth: usize) -> PrematureQueue {
    let mut q = PrematureQueue::new(depth);
    for i in 0..depth {
        let kind = if i % 3 == 0 {
            MemOpKind::Store
        } else {
            MemOpKind::Load
        };
        q.push(PrematureRecord::real(
            i % 7,
            kind,
            Tag::new(i as u64),
            (i % 5) as u32,
            i % 32,
            i as i64,
        ));
    }
    q
}

fn bench_queue_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("premature_queue");
    for &depth in &[16usize, 64] {
        g.bench_with_input(BenchmarkId::new("push_retire", depth), &depth, |b, &d| {
            b.iter(|| {
                let mut q = PrematureQueue::new(d);
                for i in 0..d {
                    q.push(PrematureRecord::real(
                        0,
                        MemOpKind::Load,
                        Tag::new(i as u64),
                        0,
                        i,
                        0,
                    ));
                }
                q.retire_if(|_| true, d)
            });
        });
    }
    g.finish();
}

fn bench_arbiter_walk(c: &mut Criterion) {
    let mut g = c.benchmark_group("arbiter_validate");
    for &depth in &[16usize, 64, 256] {
        let q = filled_queue(depth);
        let mut arb = Arbiter::new((0..8).collect(), true);
        let arriving =
            PrematureRecord::real(1, MemOpKind::Store, Tag::new(depth as u64 / 2), 1, 5, 999);
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| arb.validate(&q, &arriving));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_queue_ops, bench_arbiter_walk);
criterion_main!(benches);
