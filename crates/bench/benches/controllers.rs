//! End-to-end controller comparison benches: full kernel simulations under
//! the LSQ baselines and PreVV — the wall-clock cost of regenerating one
//! Table II cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prevv::kernels::{extra, paper};
use prevv::{run_kernel, Controller, PrevvConfig};

fn bench_histogram(c: &mut Criterion) {
    let spec = extra::histogram(96, 8, 7);
    let mut g = c.benchmark_group("histogram96");
    g.sample_size(20);
    for (name, ctrl) in [
        ("dynamatic16", Controller::Dynamatic { depth: 16 }),
        ("fast_lsq16", Controller::FastLsq { depth: 16 }),
        ("prevv16", Controller::Prevv(PrevvConfig::prevv16())),
        ("prevv64", Controller::Prevv(PrevvConfig::prevv64())),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &ctrl, |b, ctrl| {
            b.iter(|| {
                let r = run_kernel(&spec, ctrl.clone()).expect("runs");
                assert!(r.matches_golden);
                r.report.cycles
            });
        });
    }
    g.finish();
}

fn bench_paper_kernels_prevv(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_prevv16");
    g.sample_size(10);
    for spec in [
        paper::polyn_mult(10),
        paper::gaussian(6),
        paper::triangular(6),
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(spec.name.clone()),
            &spec,
            |b, spec| {
                b.iter(|| {
                    run_kernel(spec, Controller::Prevv(PrevvConfig::prevv16()))
                        .expect("runs")
                        .report
                        .cycles
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_histogram, bench_paper_kernels_prevv);
criterion_main!(benches);
