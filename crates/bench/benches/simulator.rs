//! Microbenchmarks of the elastic-circuit simulation engine: how fast the
//! wire fixpoint + commit loop runs on representative netlists.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prevv::dataflow::components::{BinOp, BinaryAlu, Buffer, Constant, Fork, IterSource, Sink};
use prevv::dataflow::{Netlist, Simulator, SquashBus};

/// A linear pipeline: source -> fork -> (chain of adders) -> sink.
fn pipeline(iters: i64, stages: usize) -> (Netlist, SquashBus) {
    let mut net = Netlist::new();
    let bus = SquashBus::new();
    let src = net.channel();
    let mut chain_in = net.channel();
    let const_trigs: Vec<_> = (0..stages).map(|_| net.channel()).collect();
    let mut fork_outs = vec![chain_in];
    fork_outs.extend(const_trigs.iter().copied());
    net.add(
        "src",
        IterSource::new(
            (0..iters).map(|i| vec![i]).collect(),
            vec![src],
            bus.clone(),
        ),
    );
    // Buffer each constant trigger so the source is never the bottleneck.
    let mut buffered = vec![fork_outs[0]];
    for (k, &t) in const_trigs.iter().enumerate() {
        let slot = net.channel();
        net.add(format!("buf{k}"), Buffer::new(4, slot, t));
        buffered.push(slot);
    }
    net.add("fork", Fork::new(src, buffered));
    for (k, trig) in const_trigs.into_iter().enumerate() {
        let c = net.channel();
        let out = net.channel();
        net.add(format!("const{k}"), Constant::new(1, trig, c));
        net.add(
            format!("add{k}"),
            BinaryAlu::with_latency(BinOp::Add, 1, chain_in, c, out),
        );
        chain_in = out;
    }
    net.add("sink", Sink::new(vec![chain_in]));
    (net, bus)
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    for &stages in &[4usize, 16, 64] {
        g.bench_with_input(
            BenchmarkId::new("pipeline_256_iters", stages),
            &stages,
            |b, &stages| {
                b.iter(|| {
                    let (net, bus) = pipeline(256, stages);
                    let mut sim = Simulator::new(net, bus).expect("valid");
                    sim.run().expect("completes")
                });
            },
        );
    }
    g.finish();
}

fn bench_fixpoint_convergence(c: &mut Criterion) {
    // Per-cycle cost on a wide netlist (many independent components).
    c.bench_function("engine/step_wide_64", |b| {
        let (net, bus) = pipeline(1_000_000, 64);
        let mut sim = Simulator::new(net, bus).expect("valid");
        b.iter(|| sim.step().expect("steps"));
    });
}

criterion_group!(benches, bench_engine, bench_fixpoint_convergence);
criterion_main!(benches);
