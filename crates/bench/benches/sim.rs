//! Engine-scheduler throughput: simulated cycles per wall-clock second for
//! the dense reference sweep versus the event-driven dirty-set fixpoint, on
//! the paper's fig2a kernel under the default PreVV controller. The final
//! `BENCH_SIM_JSON` line is machine-readable; `scripts/verify.sh` runs this
//! bench, records the best-of-5 figures into `BENCH_sim.json`, and fails the
//! build if the event-driven default ever drops below dense throughput on
//! the latency-bound workload.
//!
//! Two regimes of the same kernel are measured:
//!
//! * **bram** — on-chip memory timing (3-cycle reads) and an aliasing-heavy
//!   index vector: nearly every cycle some channel fires, so the dirty set
//!   stays large and event-driven scheduling buys little (it may even trail
//!   the dense sweep slightly — the honest worst case).
//! * **dram** — external-memory timing (200-cycle reads) and a fully
//!   serializing index vector (`b[i] = 0` with forwarding off): the RAW
//!   chain keeps the circuit quiescent most cycles, which is exactly the
//!   regime an event-driven scheduler exploits. The dense sweep re-evaluates
//!   every stalled component every fixpoint iteration regardless.
//!
//! Only `Simulator::run` is timed — synthesis and controller construction
//! are one-time setup, not per-cycle scheduler work.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use prevv::kernels::extra;
use prevv::kernels::gen::{generate, GenConfig};
use prevv::{
    run_kernel_with, Controller, KernelSpec, MemTiming, PrevvConfig, PrevvMemory, Scheduler,
    SimConfig, Simulator, SynthOptions,
};

const N: i64 = 256;

/// Pinned seeds for the generated-kernel sweep (the `--fuzz` corpus base
/// seed, then successors): irregular multi-loop shapes the hand-written
/// fig2a regimes never exercise, so the event-vs-dense gate also covers
/// triangular nests, indirect addressing, and uneven dirty sets.
const GEN_SEED_BASE: u64 = 0x0e1e_5c70_ad89_5542; // fnv("0xPREVV")
const GEN_KERNELS: u64 = 8;

/// On-chip timing, aliasing-heavy indices: the busy regime.
fn bram_workload() -> (KernelSpec, PrevvConfig) {
    let b: Vec<i64> = (0..N).map(|i| (i * 7 + 3) % 16).collect();
    let mut config = PrevvConfig::with_depth(16);
    config.timing = MemTiming {
        read_latency: 3,
        write_latency: 2,
        read_ports: 1,
        write_ports: 1,
    };
    (extra::fig2a(N, b), config)
}

/// External-memory timing, fully serializing indices: the latency-bound
/// regime (every `a[b[i]] += 5` hits the same address, so with forwarding
/// off each load waits for the previous iteration's store to commit).
fn dram_workload() -> (KernelSpec, PrevvConfig) {
    let b: Vec<i64> = vec![0; N as usize];
    let mut config = PrevvConfig::with_depth(16);
    config.forwarding = false;
    config.timing = MemTiming {
        read_latency: 200,
        write_latency: 100,
        read_ports: 1,
        write_ports: 1,
    };
    (extra::fig2a(N, b), config)
}

/// Generated-kernel sweep: `GEN_KERNELS` irregular shapes from the fuzzer's
/// bench profile, each under the latency-bound regime (external-memory
/// timing, forwarding off) where the dirty-set scheduler has to earn its
/// keep on loop nests it has never seen hand-tuned.
fn gen_workloads() -> Vec<(KernelSpec, PrevvConfig)> {
    let cfg = GenConfig::bench();
    (0..GEN_KERNELS)
        .map(|i| {
            let spec = generate(GEN_SEED_BASE.wrapping_add(i), &cfg);
            let depth = 16.max(spec.mem_ops_per_iter());
            let mut config = PrevvConfig::with_depth(depth);
            config.forwarding = false;
            config.timing = MemTiming {
                read_latency: 200,
                write_latency: 100,
                read_ports: 1,
                write_ports: 1,
            };
            (spec, config)
        })
        .collect()
}

/// One engine run under `scheduler`, timing `Simulator::run` only.
/// Returns (simulated cycles, seconds).
fn run_once(spec: &KernelSpec, config: &PrevvConfig, scheduler: Scheduler) -> (u64, f64) {
    let mut synth = prevv::ir::synthesize(spec).expect("fig2a synthesizes");
    let (ctrl, _ram, _stats) =
        PrevvMemory::new(synth.interface.clone(), config.clone(), synth.bus.clone())
            .expect("valid config");
    synth.netlist.add("prevv", ctrl);
    let mut sim = Simulator::new(synth.netlist, synth.bus)
        .expect("valid netlist")
        .with_config(SimConfig {
            scheduler,
            ..SimConfig::default()
        });
    let start = Instant::now();
    let report = sim.run().expect("fig2a completes");
    let secs = start.elapsed().as_secs_f64();
    (report.cycles, secs)
}

/// Best-of-5 cycles/second — best-of suppresses scheduler noise on a
/// shared box, mirroring the modelcheck bench.
fn best_cycles_per_sec(
    spec: &KernelSpec,
    config: &PrevvConfig,
    scheduler: Scheduler,
) -> (u64, f64) {
    let mut best = 0.0f64;
    let mut cycles = 0;
    for _ in 0..5 {
        let (c, secs) = run_once(spec, config, scheduler);
        cycles = c;
        best = best.max(c as f64 / secs);
    }
    (cycles, best)
}

/// Full end-to-end correctness check of one workload under both schedulers
/// (untimed): identical cycle counts and golden memory images.
fn check_workload(spec: &KernelSpec, config: &PrevvConfig) -> u64 {
    let mut cycles = None;
    for scheduler in [Scheduler::Dense, Scheduler::EventDriven] {
        let sim = SimConfig {
            scheduler,
            ..SimConfig::default()
        };
        let result = run_kernel_with(
            spec,
            Controller::Prevv(config.clone()),
            &SynthOptions::default(),
            &sim,
        )
        .expect("fig2a completes");
        assert!(result.matches_golden, "bench run must stay correct");
        let prev = cycles.replace(result.report.cycles);
        if let Some(p) = prev {
            assert_eq!(p, result.report.cycles, "schedulers must agree");
        }
    }
    cycles.expect("both schedulers ran")
}

/// Best-of-3 aggregate cycles/second over the whole generated sweep (one
/// timing sample = every sweep kernel back to back, so slow shapes cannot
/// hide behind fast ones).
fn sweep_cycles_per_sec(
    workloads: &[(KernelSpec, PrevvConfig)],
    scheduler: Scheduler,
) -> (u64, f64) {
    let mut best = 0.0f64;
    let mut total_cycles = 0u64;
    for _ in 0..3 {
        total_cycles = 0;
        let mut total_secs = 0.0f64;
        for (spec, config) in workloads {
            let (c, secs) = run_once(spec, config, scheduler);
            total_cycles += c;
            total_secs += secs;
        }
        best = best.max(total_cycles as f64 / total_secs);
    }
    (total_cycles, best)
}

fn bench_schedulers(c: &mut Criterion) {
    let (spec, config) = dram_workload();
    let mut g = c.benchmark_group("sim_cycles_per_sec");
    g.bench_function("dense", |b| {
        b.iter(|| run_once(&spec, &config, Scheduler::Dense));
    });
    g.bench_function("event", |b| {
        b.iter(|| run_once(&spec, &config, Scheduler::EventDriven));
    });
    g.finish();
}

/// Emits the machine-readable summary line `scripts/verify.sh` consumes.
fn emit_summary(_c: &mut Criterion) {
    let (bram_spec, bram_config) = bram_workload();
    let (dram_spec, dram_config) = dram_workload();
    let bram_cycles = check_workload(&bram_spec, &bram_config);
    let dram_cycles = check_workload(&dram_spec, &dram_config);

    let (c, bram_dense) = best_cycles_per_sec(&bram_spec, &bram_config, Scheduler::Dense);
    assert_eq!(c, bram_cycles);
    let (c, bram_event) = best_cycles_per_sec(&bram_spec, &bram_config, Scheduler::EventDriven);
    assert_eq!(c, bram_cycles);
    let (c, dram_dense) = best_cycles_per_sec(&dram_spec, &dram_config, Scheduler::Dense);
    assert_eq!(c, dram_cycles);
    let (c, dram_event) = best_cycles_per_sec(&dram_spec, &dram_config, Scheduler::EventDriven);
    assert_eq!(c, dram_cycles);

    // Generated-kernel sweep: correctness-check every shape untimed, then
    // time the aggregate under each scheduler.
    let sweep = gen_workloads();
    let mut gen_cycles = 0u64;
    for (spec, config) in &sweep {
        gen_cycles += check_workload(spec, config);
    }
    let (c, gen_dense) = sweep_cycles_per_sec(&sweep, Scheduler::Dense);
    assert_eq!(c, gen_cycles);
    let (c, gen_event) = sweep_cycles_per_sec(&sweep, Scheduler::EventDriven);
    assert_eq!(c, gen_cycles);

    let speedup = dram_event / dram_dense;
    let gen_speedup = gen_event / gen_dense;
    println!(
        "BENCH_SIM_JSON {{\"workload\": \"fig2a n=256 prevv16, engine-only, best of 5\", \
         \"bram_cycles\": {bram_cycles}, \"bram_dense_cps\": {bram_dense:.0}, \
         \"bram_event_cps\": {bram_event:.0}, \
         \"dram_cycles\": {dram_cycles}, \"dram_dense_cps\": {dram_dense:.0}, \
         \"dram_event_cps\": {dram_event:.0}, \"event_speedup\": {speedup:.2}, \
         \"gen_workload\": \"fuzz bench profile x{GEN_KERNELS} seed 0xPREVV, \
         dram timing, best of 3\", \
         \"gen_cycles\": {gen_cycles}, \"gen_dense_cps\": {gen_dense:.0}, \
         \"gen_event_cps\": {gen_event:.0}, \"gen_event_speedup\": {gen_speedup:.2}}}"
    );
}

criterion_group!(schedulers, bench_schedulers);
criterion_group!(summary, emit_summary);
criterion_main!(schedulers, summary);
