//! Checker-throughput microbench: how many abstract protocol states per
//! second the PV2xx exploration engine sustains, on the two workload shapes
//! that matter — a symbolically dischargeable kernel (fig2a, where PV301
//! removes three of the four pair-classes and partial-order reduction
//! collapses the rest) and a fully validated stress kernel (two
//! runtime-indexed read-modify-write streams, where every interleaving of
//! the premature queue is semantically distinct and the engine must brute
//! its way through the space). `scripts/verify.sh` records the same
//! throughput figure into `BENCH_modelcheck.json` per PR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prevv::analyze::{check_protocol, ProtocolOptions};
use prevv::ir::parse::parse_kernel;
use prevv::ir::KernelSpec;

/// fig2a from the paper: one residual runtime-indexed pair, three pairs
/// discharged by the PV3xx prover before exploration starts.
fn fig2a() -> KernelSpec {
    parse_kernel(
        "fig2a",
        "int a[16];\nint b[8] = {2, 5, 2, 7, 2, 1, 5, 2};\n\
         for (int i = 0; i < 8; ++i) { a[b[i]] = a[b[i]] + 5; b[i] = b[i] + 3; }",
    )
    .expect("fig2a parses")
}

/// Two independent runtime-indexed hazard streams: all four ambiguous
/// pairs stay validated, so ample-set reduction finds nothing to commute
/// and the state count is the honest cost of the depth.
fn stress() -> KernelSpec {
    parse_kernel(
        "stress",
        "int a[8];\nint b[8] = {2, 5, 2, 7, 2, 1, 5, 2};\n\
         int c[8];\nint d[8] = {1, 3, 1, 6, 1, 0, 3, 1};\n\
         for (int i = 0; i < 8; ++i) { a[b[i]] = a[b[i]] + 1; c[d[i]] = c[d[i]] + 2; \
         b[i] = b[i] + 3; d[i] = d[i] + 5; }",
    )
    .expect("stress kernel parses")
}

fn bench_checker_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("modelcheck_states_per_sec");
    let fig2a = fig2a();
    let stress = stress();
    for &depth in &[2u64, 4] {
        let opts = ProtocolOptions {
            iterations: depth,
            ..ProtocolOptions::default()
        };
        g.bench_with_input(BenchmarkId::new("fig2a", depth), &depth, |b, _| {
            b.iter(|| check_protocol(&fig2a, &opts).expect("checkable"));
        });
        g.bench_with_input(BenchmarkId::new("stress", depth), &depth, |b, _| {
            b.iter(|| check_protocol(&stress, &opts).expect("checkable"));
        });
    }
    g.finish();
}

fn bench_reduction_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("modelcheck_reduction");
    let fig2a = fig2a();
    for (name, por, audit) in [
        ("reduced", true, false),
        ("unreduced", false, false),
        ("audited", true, true),
    ] {
        let opts = ProtocolOptions {
            por,
            audit,
            ..ProtocolOptions::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| check_protocol(&fig2a, &opts).expect("checkable"));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_checker_throughput, bench_reduction_modes);
criterion_main!(benches);
