//! Compiler-side benches: golden interpretation, dependence analysis, and
//! synthesis of the paper kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prevv::ir::{depend, golden, synthesize};
use prevv::kernels::paper;

fn bench_golden(c: &mut Criterion) {
    let mut g = c.benchmark_group("golden_execute");
    for spec in paper::all_default() {
        g.bench_with_input(
            BenchmarkId::from_parameter(spec.name.clone()),
            &spec,
            |b, spec| b.iter(|| golden::execute(spec)),
        );
    }
    g.finish();
}

fn bench_analysis_and_synthesis(c: &mut Criterion) {
    let spec = paper::mm3(paper::default_sizes::MM);
    c.bench_function("depend_analyze/3mm", |b| b.iter(|| depend::analyze(&spec)));
    c.bench_function("synthesize/3mm", |b| {
        b.iter(|| synthesize(&spec).expect("synthesizes"))
    });
}

criterion_group!(benches, bench_golden, bench_analysis_and_synthesis);
criterion_main!(benches);
