//! The experiment implementations behind the `fig1`, `table1`, `table2`,
//! `fig7`, and `ablation` binaries — see DESIGN.md §3 for the
//! per-experiment index.

use prevv::kernels::{extra, paper};
use prevv::{
    evaluate, run_kernel_with, Controller, ControllerKind, KernelSpec, PrevvConfig, Resources,
    RunError, SimConfig, SynthOptions,
};

/// The four configurations of the paper's Tables I/II, in column order,
/// plus the speculative-allocation LSQ (`spec16`, modeled after
/// Szafarczyk et al. FPL'23) — not a paper column, but reported alongside
/// them in the regenerated tables as the strongest LSQ baseline.
pub fn configs() -> Vec<(String, Controller)> {
    vec![
        ("[15]".into(), Controller::Dynamatic { depth: 16 }),
        ("[8]".into(), Controller::FastLsq { depth: 16 }),
        ("spec16".into(), Controller::SpecLsq { depth: 16 }),
        ("PreVV16".into(), Controller::Prevv(PrevvConfig::prevv16())),
        ("PreVV64".into(), Controller::Prevv(PrevvConfig::prevv64())),
    ]
}

/// One measured data point: kernel × configuration.
#[derive(Debug, Clone)]
pub struct BenchPoint {
    /// Kernel name.
    pub kernel: String,
    /// Configuration name (paper column).
    pub config: String,
    /// Estimated resources.
    pub resources: Resources,
    /// Fraction of LUTs in the disambiguation controller.
    pub controller_share: f64,
    /// Simulated cycle count.
    pub cycles: u64,
    /// Estimated clock period (ns).
    pub cp_ns: f64,
    /// Execution time (µs) = cycles × CP.
    pub exec_us: f64,
    /// Pipeline squashes (PreVV only; 0 for LSQs).
    pub squashes: u64,
    /// Result correctness vs. the golden model.
    pub matches_golden: bool,
}

/// Evaluates one kernel under one configuration.
///
/// # Errors
///
/// Propagates [`RunError`] from synthesis or simulation.
pub fn bench_point(
    spec: &KernelSpec,
    name: &str,
    ctrl: Controller,
) -> Result<BenchPoint, RunError> {
    let e = evaluate(spec, ctrl)?;
    Ok(BenchPoint {
        kernel: spec.name.clone(),
        config: name.to_string(),
        resources: e.design.total(),
        controller_share: e.design.controller_lut_share(),
        cycles: e.run.report.cycles,
        cp_ns: e.design.clock_period_ns,
        exec_us: e.exec_time_us,
        squashes: e.run.report.squashes,
        matches_golden: e.run.matches_golden,
    })
}

/// Runs the full 5-kernel × 4-configuration grid of Tables I/II.
///
/// # Errors
///
/// Propagates the first [`RunError`].
pub fn evaluate_grid() -> Result<Vec<BenchPoint>, RunError> {
    let mut out = Vec::new();
    for spec in paper::all_default() {
        for (name, ctrl) in configs() {
            out.push(bench_point(&spec, &name, ctrl)?);
        }
    }
    Ok(out)
}

/// Fig. 1 data: the LSQ's share of each Dynamatic circuit's resources.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Kernel name.
    pub kernel: String,
    /// LSQ resources.
    pub lsq: Resources,
    /// Computation (datapath) resources.
    pub datapath: Resources,
    /// LSQ share of LUTs.
    pub lut_share: f64,
}

/// Computes Fig. 1 (no simulation needed — it is a resource breakdown).
///
/// # Errors
///
/// Propagates kernel synthesis errors.
pub fn fig1() -> Result<Vec<Fig1Row>, RunError> {
    let mut rows = Vec::new();
    for spec in paper::all_default() {
        let synth = prevv::ir::synthesize(&spec)?;
        let rep = prevv::area::estimate(&synth, ControllerKind::Dynamatic { depth: 16 });
        rows.push(Fig1Row {
            kernel: spec.name.clone(),
            lsq: rep.controller,
            datapath: rep.datapath,
            lut_share: rep.controller_lut_share(),
        });
    }
    Ok(rows)
}

/// One step of the `depth_q` sweep (experiment E6).
#[derive(Debug, Clone)]
pub struct DepthPoint {
    /// Queue depth.
    pub depth: usize,
    /// Simulated cycles.
    pub cycles: u64,
    /// Total LUTs.
    pub luts: u64,
    /// Squashes.
    pub squashes: u64,
    /// Cycles an arrival stalled on a full queue.
    pub queue_full_stalls: u64,
    /// Peak queue occupancy.
    pub high_water: usize,
}

/// Sweeps the premature queue depth on one kernel.
///
/// # Errors
///
/// Propagates the first [`RunError`].
pub fn depth_sweep(spec: &KernelSpec, depths: &[usize]) -> Result<Vec<DepthPoint>, RunError> {
    let synth = prevv::ir::synthesize(spec)?;
    let min_depth = synth.interface.ports.len();
    depths
        .iter()
        .filter(|&&d| d >= min_depth)
        .map(|&depth| {
            let e = evaluate(spec, Controller::Prevv(PrevvConfig::with_depth(depth)))?;
            let stats = e.run.prevv.expect("prevv controller");
            let rep = prevv::area::estimate(
                &synth,
                ControllerKind::Prevv {
                    depth,
                    pair_reduction: true,
                },
            );
            Ok(DepthPoint {
                depth,
                cycles: e.run.report.cycles,
                luts: rep.total().luts,
                squashes: stats.squashes,
                queue_full_stalls: stats.queue_full_stalls,
                high_water: stats.queue_high_water,
            })
        })
        .collect()
}

/// Outcome of the §V-C deadlock demonstration (experiment E5).
#[derive(Debug)]
pub struct DeadlockDemo {
    /// Cycles with fake tokens enabled (completes).
    pub with_fakes_cycles: u64,
    /// Fake tokens delivered.
    pub fakes: u64,
    /// The error produced without fake tokens (expected: deadlock).
    pub without_fakes: RunError,
}

/// Runs the guarded kernel with and without fake tokens.
///
/// # Errors
///
/// Returns an error if the *with-fakes* run fails, or if the without-fakes
/// run unexpectedly succeeds.
pub fn deadlock_demo() -> Result<DeadlockDemo, RunError> {
    let spec = extra::guarded_update(64, 3);
    let ok = run_kernel_with(
        &spec,
        Controller::Prevv(PrevvConfig::with_depth(4)),
        &SynthOptions::default(),
        &SimConfig {
            max_cycles: 500_000,
            watchdog: 2_000,
            ..SimConfig::default()
        },
    )?;
    let no_fakes = SynthOptions {
        fake_tokens: false,
        ..SynthOptions::default()
    };
    let err = match run_kernel_with(
        &spec,
        Controller::Prevv(PrevvConfig::with_depth(4)),
        &no_fakes,
        &SimConfig {
            max_cycles: 500_000,
            watchdog: 2_000,
            ..SimConfig::default()
        },
    ) {
        Err(e) => e,
        Ok(_) => {
            return Err(RunError::Sim(prevv::SimError::Timeout { max_cycles: 0 }));
        }
    };
    Ok(DeadlockDemo {
        with_fakes_cycles: ok.report.cycles,
        fakes: ok.prevv.map_or(0, |s| s.fakes),
        without_fakes: err,
    })
}

/// One row of the §V-B scalability comparison (experiment E7).
#[derive(Debug, Clone)]
pub struct ScalabilityRow {
    /// Number of loads sharing the store's ambiguity.
    pub width: usize,
    /// Ambiguous pairs found.
    pub pairs: usize,
    /// LUTs of the shared-queue PreVV (with pair reduction).
    pub shared_luts: u64,
    /// LUTs of naive per-pair replication (paper Eq. 11).
    pub naive_luts: u64,
    /// Clock period of the shared design.
    pub shared_cp: f64,
    /// Clock period of the naive design (Eq. 12 degradation).
    pub naive_cp: f64,
}

/// Prices shared vs. naive PreVV as the overlapped-pair count grows.
///
/// # Errors
///
/// Propagates kernel synthesis errors.
pub fn scalability(widths: &[usize]) -> Result<Vec<ScalabilityRow>, RunError> {
    widths
        .iter()
        .map(|&w| {
            let spec = extra::overlapped_pairs(12, w);
            let synth = prevv::ir::synthesize(&spec)?;
            let shared_kind = ControllerKind::Prevv {
                depth: 16,
                pair_reduction: true,
            };
            let naive_kind = ControllerKind::NaivePrevvPerPair { depth: 16 };
            let shared = prevv::area::estimate(&synth, shared_kind);
            let naive = prevv::area::estimate(&synth, naive_kind);
            Ok(ScalabilityRow {
                width: w,
                pairs: synth.interface.pairs.len(),
                shared_luts: shared.total().luts,
                naive_luts: naive.total().luts,
                shared_cp: shared.clock_period_ns,
                naive_cp: naive.clock_period_ns,
            })
        })
        .collect()
}

/// Forwarding (queue bypass) ablation on a hazard-heavy kernel.
#[derive(Debug, Clone, Copy)]
pub struct ForwardingAblation {
    /// Cycles with bypass (architecture default).
    pub bypass_cycles: u64,
    /// Squashes with bypass.
    pub bypass_squashes: u64,
    /// Cycles in pure squash-on-mismatch mode.
    pub pure_cycles: u64,
    /// Squashes in pure mode.
    pub pure_squashes: u64,
}

/// One step of the memory-bandwidth ablation.
#[derive(Debug, Clone, Copy)]
pub struct BandwidthPoint {
    /// Parallel RAM read ports.
    pub read_ports: u32,
    /// Parallel commit (write) ports.
    pub write_ports: u32,
    /// Simulated cycles under PreVV64.
    pub cycles: u64,
}

/// Sweeps RAM port bandwidth for PreVV64 on one kernel — out-of-order
/// issue only pays off if the memory system can absorb it.
///
/// # Errors
///
/// Propagates the first [`RunError`].
pub fn bandwidth_sweep(spec: &KernelSpec) -> Result<Vec<BandwidthPoint>, RunError> {
    [(1u32, 1u32), (2, 1), (2, 2), (4, 2)]
        .into_iter()
        .map(|(read_ports, write_ports)| {
            let mut cfg = PrevvConfig::prevv64();
            cfg.timing.read_ports = read_ports;
            cfg.timing.write_ports = write_ports;
            let e = evaluate(spec, Controller::Prevv(cfg))?;
            Ok(BandwidthPoint {
                read_ports,
                write_ports,
                cycles: e.run.report.cycles,
            })
        })
        .collect()
}

/// Compares PreVV with and without the queue bypass.
///
/// # Errors
///
/// Propagates the first [`RunError`].
pub fn forwarding_ablation(spec: &KernelSpec) -> Result<ForwardingAblation, RunError> {
    let with = evaluate(spec, Controller::Prevv(PrevvConfig::prevv16()))?;
    let mut cfg = PrevvConfig::prevv16();
    cfg.forwarding = false;
    let without = evaluate(spec, Controller::Prevv(cfg))?;
    Ok(ForwardingAblation {
        bypass_cycles: with.run.report.cycles,
        bypass_squashes: with.run.report.squashes,
        pure_cycles: without.run.report.cycles,
        pure_squashes: without.run.report.squashes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reproduces_the_lsq_dominance_claim() {
        for row in fig1().expect("fig1 computes") {
            assert!(
                row.lut_share > crate::paper_data::FIG1_LSQ_SHARE,
                "{}: LSQ share {:.2}",
                row.kernel,
                row.lut_share
            );
        }
    }

    #[test]
    fn depth_sweep_is_monotone_in_stalls() {
        let spec = extra::histogram(64, 6, 9);
        let pts = depth_sweep(&spec, &[4, 16, 64]).expect("sweeps");
        assert!(pts[0].queue_full_stalls >= pts[2].queue_full_stalls);
        assert!(pts[0].luts < pts[2].luts);
        assert!(pts.iter().all(|p| p.high_water <= p.depth));
    }

    #[test]
    fn deadlock_demo_shows_both_sides() {
        let d = deadlock_demo().expect("runs");
        assert!(d.fakes > 0);
        assert!(matches!(
            d.without_fakes,
            RunError::Sim(prevv::SimError::Deadlock { .. })
        ));
    }

    #[test]
    fn scalability_gap_grows_with_width() {
        let rows = scalability(&[1, 2, 4]).expect("prices");
        let gap = |r: &ScalabilityRow| r.naive_luts as f64 / r.shared_luts as f64;
        assert!(gap(&rows[2]) > gap(&rows[0]));
        assert!(rows[2].naive_cp > rows[2].shared_cp);
    }

    #[test]
    fn bandwidth_helps_or_is_neutral() {
        let spec = paper::polyn_mult(8);
        let pts = bandwidth_sweep(&spec).expect("sweeps");
        assert_eq!(pts.len(), 4);
        let first = pts.first().expect("non-empty").cycles;
        let last = pts.last().expect("non-empty").cycles;
        assert!(
            last <= first,
            "more ports must not slow the kernel: {first} -> {last}"
        );
    }

    #[test]
    fn forwarding_ablation_pure_mode_squashes_more() {
        let spec = extra::serial_reduction(32);
        let a = forwarding_ablation(&spec).expect("runs");
        assert!(a.pure_squashes >= a.bypass_squashes);
    }
}
