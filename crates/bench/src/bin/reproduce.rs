//! `reproduce` — one command that re-derives every headline claim of the
//! paper and **fails loudly** if any stops holding. CI for the reproduction
//! itself: run it after any change to the simulator, the controllers, or
//! the area model.
//!
//! ```text
//! cargo run --release -p prevv-bench --bin reproduce
//! ```

use prevv::RunError;
use prevv_bench::experiments::{deadlock_demo, evaluate_grid, fig1};
use prevv_bench::paper_data::{BENCHMARKS, FIG1_LSQ_SHARE};
use prevv_bench::{geomean, pct};

struct Checks {
    passed: usize,
    failed: usize,
}

impl Checks {
    fn check(&mut self, name: &str, ok: bool, detail: String) {
        if ok {
            self.passed += 1;
            println!("PASS  {name}: {detail}");
        } else {
            self.failed += 1;
            println!("FAIL  {name}: {detail}");
        }
    }
}

fn main() {
    let mut c = Checks {
        passed: 0,
        failed: 0,
    };
    println!("== reproducing the paper's headline claims ==\n");

    // --- Fig. 1: LSQ dominance --------------------------------------------
    let rows = fig1().expect("fig1 computes");
    let min_share = rows
        .iter()
        .map(|r| r.lut_share)
        .fold(f64::INFINITY, f64::min);
    c.check(
        "fig1.lsq_dominates",
        min_share > FIG1_LSQ_SHARE,
        format!(
            "minimum LSQ LUT share {:.1}% (paper: >80%)",
            min_share * 100.0
        ),
    );

    // --- Tables I & II ------------------------------------------------------
    let grid = evaluate_grid().expect("grid runs");
    let all_correct = grid.iter().all(|p| p.matches_golden);
    c.check(
        "grid.correctness",
        all_correct,
        format!("{} kernel×config points vs golden", grid.len()),
    );
    let get = |kernel: &str, config: &str| {
        grid.iter()
            .find(|p| p.kernel == kernel && p.config == config)
            .expect("grid point")
    };

    // Table I: PreVV16/64 beat [8] on LUTs and FFs everywhere.
    let mut lut16 = Vec::new();
    let mut lut64 = Vec::new();
    let mut ff16 = Vec::new();
    let mut ff64 = Vec::new();
    let mut per_kernel_ok = true;
    for &b in &BENCHMARKS {
        let base = get(b, "[8]").resources;
        let p16 = get(b, "PreVV16").resources;
        let p64 = get(b, "PreVV64").resources;
        per_kernel_ok &= p16.luts < base.luts && p64.luts < base.luts;
        per_kernel_ok &= p16.ffs < base.ffs && p64.ffs < base.ffs;
        per_kernel_ok &= p16.luts < p64.luts;
        lut16.push(p16.luts as f64 / base.luts as f64);
        lut64.push(p64.luts as f64 / base.luts as f64);
        ff16.push(p16.ffs as f64 / base.ffs as f64);
        ff64.push(p64.ffs as f64 / base.ffs as f64);
    }
    c.check(
        "table1.per_kernel_ordering",
        per_kernel_ok,
        "PreVV16 < PreVV64 < [8] on LUTs and FFs for every kernel".into(),
    );
    let g16 = geomean(lut16.iter().copied());
    let g64 = geomean(lut64.iter().copied());
    c.check(
        "table1.lut_geomeans",
        (0.30..0.75).contains(&g16) && (0.50..0.90).contains(&g64) && g16 < g64,
        format!(
            "LUT geomean: PreVV16 {} PreVV64 {} (paper: -43.75% / -26.45%)",
            pct(g16),
            pct(g64)
        ),
    );
    let f16 = geomean(ff16.iter().copied());
    let f64g = geomean(ff64.iter().copied());
    c.check(
        "table1.ff_geomeans",
        f16 < f64g && f64g < 1.0,
        format!(
            "FF geomean: PreVV16 {} PreVV64 {} (paper: -44.70% / -33.54%)",
            pct(f16),
            pct(f64g)
        ),
    );

    // Table II: PreVV16 pays cycles; PreVV64 wins execution time vs [8].
    let e16 = geomean(
        BENCHMARKS
            .iter()
            .map(|&b| get(b, "PreVV16").exec_us / get(b, "[8]").exec_us),
    );
    let e64 = geomean(
        BENCHMARKS
            .iter()
            .map(|&b| get(b, "PreVV64").exec_us / get(b, "[8]").exec_us),
    );
    c.check(
        "table2.prevv16_pays_cycles",
        e16 > 1.0 && e16 < 1.6,
        format!(
            "PreVV16 exec time vs [8]: {} (paper ≈ +11% cycles)",
            pct(e16)
        ),
    );
    c.check(
        "table2.prevv64_wins",
        e64 < 1.0,
        format!("PreVV64 exec time vs [8]: {} (paper -2.64%)", pct(e64)),
    );
    let cp_ok = BENCHMARKS.iter().all(|&b| {
        get(b, "PreVV16").cp_ns < get(b, "[8]").cp_ns
            && get(b, "PreVV64").cp_ns < get(b, "[8]").cp_ns
    });
    c.check(
        "table2.clock_period",
        cp_ok,
        "PreVV CP below the LSQ's on every kernel (no associative search)".into(),
    );

    // --- §V-C: fake tokens --------------------------------------------------
    match deadlock_demo() {
        Ok(d) => {
            let deadlocked = matches!(
                d.without_fakes,
                RunError::Sim(prevv::SimError::Deadlock { .. })
            );
            c.check(
                "sec5c.fake_tokens",
                d.fakes > 0 && deadlocked,
                format!(
                    "with fakes: {} cycles / {} fakes; without: {}",
                    d.with_fakes_cycles, d.fakes, d.without_fakes
                ),
            );
        }
        Err(e) => c.check("sec5c.fake_tokens", false, format!("demo failed: {e}")),
    }

    println!("\n{} checks passed, {} failed", c.passed, c.failed);
    if c.failed > 0 {
        std::process::exit(1);
    }
}
