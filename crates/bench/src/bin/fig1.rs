//! Regenerates the paper's **Fig. 1**: LSQ resource share in Dynamatic
//! circuits (the motivation — more than 80% of LUTs/FFs/muxes go to the
//! LSQ, computation gets less than 20%).
//!
//! Run with `cargo run --release -p prevv-bench --bin fig1`.

use prevv_bench::experiments::fig1;
use prevv_bench::paper_data::FIG1_LSQ_SHARE;
use prevv_bench::table::TextTable;

fn main() {
    println!("== Fig. 1: LSQ resource usage in Dynamatic [15] designs ==\n");
    let rows = match fig1() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let mut t = TextTable::new(&[
        "benchmark",
        "LSQ LUT",
        "LSQ FF",
        "LSQ mux",
        "calc LUT",
        "calc FF",
        "LSQ share (LUT)",
    ]);
    for r in &rows {
        t.row(&[
            r.kernel.clone(),
            r.lsq.luts.to_string(),
            r.lsq.ffs.to_string(),
            r.lsq.muxes.to_string(),
            r.datapath.luts.to_string(),
            r.datapath.ffs.to_string(),
            format!("{:.1}%", r.lut_share * 100.0),
        ]);
    }
    println!("{t}");
    let min = rows
        .iter()
        .map(|r| r.lut_share)
        .fold(f64::INFINITY, f64::min);
    println!(
        "paper's claim: LSQ > {:.0}% of resources; measured minimum share: {:.1}%",
        FIG1_LSQ_SHARE * 100.0,
        min * 100.0
    );
    if min <= FIG1_LSQ_SHARE {
        eprintln!("WARNING: a benchmark fell below the paper's 80% claim");
        std::process::exit(2);
    }
}
