//! Regenerates the paper's **Fig. 7**: resource usage of \[8\], PreVV16 and
//! PreVV64 normalized to plain Dynamatic \[15\] (LUT solid / FF dashed in the
//! paper; here two normalized series plus a text sparkline).
//!
//! Run with `cargo run --release -p prevv-bench --bin fig7`.

use prevv_bench::experiments::evaluate_grid;
use prevv_bench::paper_data::BENCHMARKS;
use prevv_bench::table::TextTable;

fn bar(frac: f64) -> String {
    let width = (frac * 30.0).round().clamp(0.0, 60.0) as usize;
    format!("{:5.2} {}", frac, "#".repeat(width))
}

fn main() {
    println!("== Fig. 7: resources normalized to Dynamatic [15] ==\n");
    let points = match evaluate_grid() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let get = |kernel: &str, config: &str| {
        points
            .iter()
            .find(|p| p.kernel == kernel && p.config == config)
            .expect("grid point")
    };

    for metric in ["LUT", "FF"] {
        println!("--- normalized {metric} ---");
        let mut t = TextTable::new(&["benchmark", "[8]", "PreVV16", "PreVV64"]);
        for &bench in &BENCHMARKS {
            let base = get(bench, "[15]").resources;
            let pick = |cfg: &str| {
                let r = get(bench, cfg).resources;
                let (num, den) = match metric {
                    "LUT" => (r.luts, base.luts),
                    _ => (r.ffs, base.ffs),
                };
                num as f64 / den as f64
            };
            t.row(&[
                bench.to_string(),
                bar(pick("[8]")),
                bar(pick("PreVV16")),
                bar(pick("PreVV64")),
            ]);
        }
        println!("{t}");
    }
    println!("(paper shape: PreVV16 lowest, PreVV64 between PreVV16 and [8], all below [15] on LSQ-heavy kernels)");
}
