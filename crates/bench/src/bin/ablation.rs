//! Ablation experiments beyond the paper's tables:
//!
//! * `depth-sweep` — `depth_q` vs. cycles/LUTs/stalls (paper §V-A sizing);
//! * `deadlock`    — fake tokens on/off (paper §V-C);
//! * `scalability` — shared PreVV vs. naive per-pair replication (paper
//!   §V-B, Eq. 11–12);
//! * `forwarding`  — queue bypass vs. pure squash-on-mismatch;
//! * `all`         — everything.
//!
//! Run with `cargo run --release -p prevv-bench --bin ablation -- <which>`.

use prevv::kernels::{extra, paper};
use prevv::prevv_core_crate::sizing::PairTiming;
use prevv_bench::experiments::{
    bandwidth_sweep, deadlock_demo, depth_sweep, forwarding_ablation, scalability,
};
use prevv_bench::table::TextTable;

fn run_depth_sweep() {
    println!("== depth_q sweep (paper §V-A) ==\n");
    for spec in [extra::histogram(96, 6, 9), paper::polyn_mult(12)] {
        println!("kernel: {}", spec.name);
        let depths = [2, 4, 8, 16, 32, 64, 128];
        let pts = depth_sweep(&spec, &depths).expect("sweep runs");
        let mut t = TextTable::new(&[
            "depth_q",
            "cycles",
            "LUTs",
            "squashes",
            "full-stalls",
            "high-water",
        ]);
        for p in &pts {
            t.row(&[
                p.depth.to_string(),
                p.cycles.to_string(),
                p.luts.to_string(),
                p.squashes.to_string(),
                p.queue_full_stalls.to_string(),
                p.high_water.to_string(),
            ]);
        }
        println!("{t}");
        // The §V-A analytic recommendation, using measured squash rates.
        let best = pts.iter().min_by_key(|p| p.cycles).expect("non-empty");
        let iters = spec.iteration_count() as f64;
        let timing = PairTiming {
            t_org: best.cycles as f64 / iters,
            squash_probability: best.squashes as f64 / iters,
            t_token: best.cycles as f64 / iters * 8.0,
        };
        println!(
            "matched-depth model (Eq. 6-7) recommends depth ≈ {} (empirical best: {})\n",
            timing.matched_depth(),
            best.depth
        );
    }
}

fn run_deadlock() {
    println!("== fake-token deadlock elimination (paper §V-C) ==\n");
    let d = deadlock_demo().expect("demo runs");
    println!(
        "with fake tokens:    completes in {} cycles ({} fake tokens sent)",
        d.with_fakes_cycles, d.fakes
    );
    println!("without fake tokens: {}", d.without_fakes);
}

fn run_scalability() {
    println!("== scalability: shared PreVV vs naive per-pair (paper §V-B, Eq. 11-12) ==\n");
    let rows = scalability(&[1, 2, 3, 4, 6, 8]).expect("prices");
    let mut t = TextTable::new(&[
        "loads/store",
        "pairs",
        "shared LUT",
        "naive LUT",
        "blow-up",
        "shared CP",
        "naive CP",
    ]);
    for r in &rows {
        t.row(&[
            r.width.to_string(),
            r.pairs.to_string(),
            r.shared_luts.to_string(),
            r.naive_luts.to_string(),
            format!("{:.2}x", r.naive_luts as f64 / r.shared_luts as f64),
            format!("{:.2}", r.shared_cp),
            format!("{:.2}", r.naive_cp),
        ]);
    }
    println!("{t}");
}

fn run_forwarding() {
    println!("== queue bypass (forwarding) ablation ==\n");
    let mut t = TextTable::new(&[
        "kernel",
        "bypass cycles",
        "bypass squashes",
        "pure cycles",
        "pure squashes",
    ]);
    for spec in [
        extra::serial_reduction(64),
        extra::histogram(96, 4, 11),
        paper::polyn_mult(10),
    ] {
        let a = forwarding_ablation(&spec).expect("runs");
        t.row(&[
            spec.name.clone(),
            a.bypass_cycles.to_string(),
            a.bypass_squashes.to_string(),
            a.pure_cycles.to_string(),
            a.pure_squashes.to_string(),
        ]);
    }
    println!("{t}");
}

fn run_bandwidth() {
    println!("== memory port bandwidth (PreVV64) ==\n");
    let mut t = TextTable::new(&["kernel", "R/W ports", "cycles"]);
    for spec in [paper::polyn_mult(12), paper::mm2(6)] {
        for p in bandwidth_sweep(&spec).expect("sweeps") {
            t.row(&[
                spec.name.clone(),
                format!("{}R/{}W", p.read_ports, p.write_ports),
                p.cycles.to_string(),
            ]);
        }
    }
    println!("{t}");
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match which.as_str() {
        "depth-sweep" => run_depth_sweep(),
        "deadlock" => run_deadlock(),
        "scalability" => run_scalability(),
        "forwarding" => run_forwarding(),
        "bandwidth" => run_bandwidth(),
        "all" => {
            run_depth_sweep();
            run_deadlock();
            println!();
            run_scalability();
            run_forwarding();
            run_bandwidth();
        }
        other => {
            eprintln!("unknown ablation `{other}`; use depth-sweep | deadlock | scalability | forwarding | bandwidth | all");
            std::process::exit(1);
        }
    }
}
