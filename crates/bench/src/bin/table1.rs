//! Regenerates the paper's **Table I**: LUT and FF usage of circuits
//! generated with \[15\] (plain Dynamatic), \[8\] (fast LSQ allocation),
//! PreVV16 and PreVV64, plus the geomean reductions of PreVV vs. \[8\].
//!
//! Run with `cargo run --release -p prevv-bench --bin table1`.

use prevv_bench::experiments::evaluate_grid;
use prevv_bench::paper_data::{BENCHMARKS, GEOMEAN_REDUCTIONS, TABLE1};
use prevv_bench::table::TextTable;
use prevv_bench::{geomean, pct};

fn main() {
    println!("== Table I: resource usage ==\n(measured by the analytic area model; paper values in parentheses)\n");
    let points = match evaluate_grid() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    for p in &points {
        assert!(p.matches_golden, "{} under {} diverged", p.kernel, p.config);
    }
    let get = |kernel: &str, config: &str| {
        points
            .iter()
            .find(|p| p.kernel == kernel && p.config == config)
            .expect("grid point")
    };

    let mut t = TextTable::new(&[
        "benchmark",
        "[15] LUT",
        "[8] LUT",
        "PreVV16 LUT",
        "PreVV64 LUT",
        "P16 vs [8]",
        "P64 vs [8]",
    ]);
    let mut r16 = Vec::new();
    let mut r64 = Vec::new();
    for (bi, &bench) in BENCHMARKS.iter().enumerate() {
        let cols = ["[15]", "[8]", "PreVV16", "PreVV64"].map(|c| get(bench, c).resources.luts);
        let rat16 = cols[2] as f64 / cols[1] as f64;
        let rat64 = cols[3] as f64 / cols[1] as f64;
        r16.push(rat16);
        r64.push(rat64);
        let paper = TABLE1[bi];
        t.row(&[
            bench.to_string(),
            format!("{} ({})", cols[0], paper.luts[0]),
            format!("{} ({})", cols[1], paper.luts[1]),
            format!("{} ({})", cols[2], paper.luts[2]),
            format!("{} ({})", cols[3], paper.luts[3]),
            pct(rat16),
            pct(rat64),
        ]);
    }
    println!("{t}");
    println!(
        "geomean LUT reduction vs [8]:   PreVV16 {} (paper -{:.2}%)   PreVV64 {} (paper -{:.2}%)\n",
        pct(geomean(r16.iter().copied())),
        GEOMEAN_REDUCTIONS.0 * 100.0,
        pct(geomean(r64.iter().copied())),
        GEOMEAN_REDUCTIONS.1 * 100.0,
    );

    let mut t = TextTable::new(&[
        "benchmark",
        "[15] FF",
        "[8] FF",
        "PreVV16 FF",
        "PreVV64 FF",
        "P16 vs [8]",
        "P64 vs [8]",
    ]);
    let mut f16 = Vec::new();
    let mut f64v = Vec::new();
    for (bi, &bench) in BENCHMARKS.iter().enumerate() {
        let cols = ["[15]", "[8]", "PreVV16", "PreVV64"].map(|c| get(bench, c).resources.ffs);
        let rat16 = cols[2] as f64 / cols[1] as f64;
        let rat64 = cols[3] as f64 / cols[1] as f64;
        f16.push(rat16);
        f64v.push(rat64);
        let paper = TABLE1[bi];
        t.row(&[
            bench.to_string(),
            format!("{} ({})", cols[0], paper.ffs[0]),
            format!("{} ({})", cols[1], paper.ffs[1]),
            format!("{} ({})", cols[2], paper.ffs[2]),
            format!("{} ({})", cols[3], paper.ffs[3]),
            pct(rat16),
            pct(rat64),
        ]);
    }
    println!("{t}");
    println!(
        "geomean FF reduction vs [8]:    PreVV16 {} (paper -{:.2}%)   PreVV64 {} (paper -{:.2}%)",
        pct(geomean(f16.iter().copied())),
        GEOMEAN_REDUCTIONS.2 * 100.0,
        pct(geomean(f64v.iter().copied())),
        GEOMEAN_REDUCTIONS.3 * 100.0,
    );
}
