//! Regenerates the paper's **Table II**: cycle count, clock period and
//! execution time of \[15\], \[8\], PreVV16 and PreVV64 on the five kernels.
//! Cycle counts come from cycle-accurate simulation; clock periods from the
//! analytic timing model; execution time = cycles × CP.
//!
//! Run with `cargo run --release -p prevv-bench --bin table2`.

use prevv_bench::experiments::evaluate_grid;
use prevv_bench::paper_data::{BENCHMARKS, TABLE2};
use prevv_bench::table::TextTable;
use prevv_bench::{geomean, pct};

fn main() {
    println!("== Table II: timing performance ==\n(cycles: simulated; CP: analytic model; paper values in parentheses)\n");
    let points = match evaluate_grid() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    for p in &points {
        assert!(p.matches_golden, "{} under {} diverged", p.kernel, p.config);
    }
    let get = |kernel: &str, config: &str| {
        points
            .iter()
            .find(|p| p.kernel == kernel && p.config == config)
            .expect("grid point")
    };

    let mut t = TextTable::new(&[
        "benchmark",
        "[15] cyc",
        "[8] cyc",
        "spec16 cyc",
        "P16 cyc",
        "P64 cyc",
        "[15] CP",
        "[8] CP",
        "P16 CP",
        "P64 CP",
    ]);
    for (bi, &bench) in BENCHMARKS.iter().enumerate() {
        let cyc = ["[15]", "[8]", "PreVV16", "PreVV64"].map(|c| get(bench, c).cycles);
        let cp = ["[15]", "[8]", "PreVV16", "PreVV64"].map(|c| get(bench, c).cp_ns);
        // The speculative-allocation LSQ is not a paper column; no
        // parenthesized reference value exists for it.
        let spec = get(bench, "spec16").cycles;
        let paper = TABLE2[bi];
        t.row(&[
            bench.to_string(),
            format!("{} ({})", cyc[0], paper.cycles[0]),
            format!("{} ({})", cyc[1], paper.cycles[1]),
            format!("{spec} (-)"),
            format!("{} ({})", cyc[2], paper.cycles[2]),
            format!("{} ({})", cyc[3], paper.cycles[3]),
            format!("{:.2} ({:.2})", cp[0], paper.cp_ns[0]),
            format!("{:.2} ({:.2})", cp[1], paper.cp_ns[1]),
            format!("{:.2} ({:.2})", cp[2], paper.cp_ns[2]),
            format!("{:.2} ({:.2})", cp[3], paper.cp_ns[3]),
        ]);
    }
    println!("{t}");

    let mut t = TextTable::new(&[
        "benchmark",
        "[15] us",
        "[8] us",
        "P16 us",
        "P64 us",
        "P16 vs [8]",
        "P64 vs [8]",
        "squashes P16/P64",
    ]);
    let mut e16 = Vec::new();
    let mut e64 = Vec::new();
    for (bi, &bench) in BENCHMARKS.iter().enumerate() {
        let us = ["[15]", "[8]", "PreVV16", "PreVV64"].map(|c| get(bench, c).exec_us);
        let sq = ["PreVV16", "PreVV64"].map(|c| get(bench, c).squashes);
        let paper = TABLE2[bi];
        let rat16 = us[2] / us[1];
        let rat64 = us[3] / us[1];
        e16.push(rat16);
        e64.push(rat64);
        t.row(&[
            bench.to_string(),
            format!("{:.2} ({:.2})", us[0], paper.exec_us[0]),
            format!("{:.2} ({:.2})", us[1], paper.exec_us[1]),
            format!("{:.2} ({:.2})", us[2], paper.exec_us[2]),
            format!("{:.2} ({:.2})", us[3], paper.exec_us[3]),
            pct(rat16),
            pct(rat64),
            format!("{}/{}", sq[0], sq[1]),
        ]);
    }
    println!("{t}");
    println!(
        "geomean exec time vs [8]:  PreVV16 {}   PreVV64 {} (paper: PreVV64 -2.64%)",
        pct(geomean(e16.iter().copied())),
        pct(geomean(e64.iter().copied())),
    );
}
