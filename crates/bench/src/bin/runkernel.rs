//! `runkernel` — the reproduction as a command-line tool: parse a kernel
//! source file (see `prevv_ir::parse` for the language), synthesize it,
//! attach a disambiguation controller, simulate, verify against the golden
//! model, and report resources/timing. Optionally dump the circuit as
//! Graphviz DOT and the memory-port activity as a VCD waveform.
//!
//! ```text
//! cargo run --release -p prevv-bench --bin runkernel -- \
//!     kernels/histogram.pvk --controller prevv16 --dot /tmp/c.dot --vcd /tmp/c.vcd
//! ```
//!
//! Controllers: `direct`, `dynamatic16`, `fast16`, `prevv<depth>` (e.g.
//! `prevv16`, `prevv64`, `prevv32`).

use prevv::dataflow::trace::{to_vcd, TraceRecorder};
use prevv::dataflow::{sweep, viz, Scheduler, SimConfig, Simulator};
use prevv::{Controller, Lsq, LsqConfig, MemTiming, PrevvConfig, PrevvMemory};
use rand::{Rng, SeedableRng};

struct Args {
    path: String,
    controller: Controller,
    protocol: bool,
    mc_threads: usize,
    stats: bool,
    dot: Option<String>,
    vcd: Option<String>,
    scheduler: Scheduler,
    sweep: bool,
    depths: Vec<usize>,
    seeds: u64,
    threads: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: runkernel <file.pvk> [--controller direct|dynamatic16|fast16|prevv<depth>] \
         [--protocol] [--mc-threads <n>] [--stats] [--dot <out.dot>] [--vcd <out.vcd>] \
         [--scheduler dense|event] \
         [--sweep [--depths <d,d,...>] [--seeds <n>] [--threads <n>]]"
    );
    std::process::exit(2);
}

/// The `--stats` table length: most-stalled channels worth printing.
const TOP_STALLED: usize = 8;

/// Default `--sweep` depth axis: the paper's two evaluated depths plus the
/// surrounding powers of two.
const SWEEP_DEPTHS: [usize; 4] = [8, 16, 32, 64];

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut controller = Controller::Prevv(PrevvConfig::prevv16());
    let mut protocol = false;
    let mut mc_threads = 0usize;
    let mut stats = false;
    let mut dot = None;
    let mut vcd = None;
    let mut scheduler = Scheduler::default();
    let mut sweep = false;
    let mut depths = SWEEP_DEPTHS.to_vec();
    let mut seeds = 1u64;
    let mut threads = 0usize;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--protocol" => protocol = true,
            "--stats" => stats = true,
            "--sweep" => sweep = true,
            "--mc-threads" => {
                let v = args.next().unwrap_or_else(|| usage());
                mc_threads = v.parse().unwrap_or_else(|_| usage());
                protocol = true;
            }
            "--controller" => {
                let v = args.next().unwrap_or_else(|| usage());
                controller = match v.as_str() {
                    "direct" => Controller::Direct,
                    "dynamatic16" => Controller::Dynamatic { depth: 16 },
                    "fast16" => Controller::FastLsq { depth: 16 },
                    other => match other.strip_prefix("prevv").and_then(|d| d.parse().ok()) {
                        Some(depth) => Controller::Prevv(PrevvConfig::with_depth(depth)),
                        None => usage(),
                    },
                };
            }
            "--scheduler" => {
                scheduler = match args.next().unwrap_or_else(|| usage()).as_str() {
                    "dense" => Scheduler::Dense,
                    "event" => Scheduler::EventDriven,
                    _ => usage(),
                };
            }
            "--depths" => {
                let v = args.next().unwrap_or_else(|| usage());
                depths = v
                    .split(',')
                    .map(|d| d.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if depths.is_empty() {
                    usage();
                }
            }
            "--seeds" => {
                seeds = args
                    .next()
                    .unwrap_or_else(|| usage())
                    .parse()
                    .unwrap_or_else(|_| usage());
                if seeds == 0 {
                    usage();
                }
            }
            "--threads" => {
                threads = args
                    .next()
                    .unwrap_or_else(|| usage())
                    .parse()
                    .unwrap_or_else(|_| usage());
            }
            "--dot" => dot = Some(args.next().unwrap_or_else(|| usage())),
            "--vcd" => vcd = Some(args.next().unwrap_or_else(|| usage())),
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            _ => usage(),
        }
    }
    Args {
        path: path.unwrap_or_else(|| usage()),
        controller,
        protocol,
        mc_threads,
        stats,
        dot,
        vcd,
        scheduler,
        sweep,
        depths,
        seeds,
        threads,
    }
}

/// Deterministic RAM-timing perturbation for the `--sweep` seed axis: seed 0
/// is the stock timing, every other seed draws latencies/bandwidth from a
/// splitmix stream keyed only on the seed — the same seed always yields the
/// same timing, so sweep output is reproducible anywhere.
fn seeded_timing(seed: u64) -> MemTiming {
    if seed == 0 {
        return MemTiming::default();
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    MemTiming {
        read_latency: rng.gen_range(1..=4u32),
        write_latency: rng.gen_range(1..=3u32),
        read_ports: rng.gen_range(1..=2u32),
        write_ports: 1,
    }
}

/// One grid point of a `--sweep` run, in deterministic axis-major order.
struct SweepJob {
    depth: usize,
    seed: u64,
}

/// Batched multi-config driver: a PreVV depth × RAM-timing-seed grid over
/// one kernel, sharded across worker threads. Each worker synthesizes,
/// simulates, and verifies its own circuit (netlists are thread-local by
/// construction); the result table is in grid order and byte-identical at
/// any `--threads` value.
fn run_sweep(spec: &prevv::KernelSpec, args: &Args) -> ! {
    let jobs: Vec<SweepJob> = args
        .depths
        .iter()
        .flat_map(|&depth| (0..args.seeds).map(move |seed| SweepJob { depth, seed }))
        .collect();
    let sim_config = SimConfig {
        scheduler: args.scheduler,
        ..SimConfig::default()
    };
    let worker = |job: &SweepJob| -> Result<prevv::RunResult, prevv::RunError> {
        let mut cfg = PrevvConfig::with_depth(job.depth);
        cfg.timing = seeded_timing(job.seed);
        prevv::run_kernel_with(
            spec,
            Controller::Prevv(cfg),
            &prevv::SynthOptions::default(),
            &sim_config,
        )
    };
    let results = if args.threads == 0 {
        sweep::run(&jobs, worker)
    } else {
        sweep::run_with_threads(&jobs, args.threads, worker)
    };

    println!(
        "sweep: {} point(s) ({} depth(s) x {} seed(s))",
        jobs.len(),
        args.depths.len(),
        args.seeds
    );
    println!("depth seed cycles transfers stalls squashes golden");
    let mut failures = 0usize;
    for (job, res) in jobs.iter().zip(&results) {
        match res {
            Ok(r) => {
                if !r.matches_golden {
                    failures += 1;
                }
                println!(
                    "{:>5} {:>4} {:>8} {:>9} {:>8} {:>8} {}",
                    job.depth,
                    job.seed,
                    r.report.cycles,
                    r.report.transfers,
                    r.report.stall_cycles,
                    r.report.squashes,
                    r.matches_golden
                );
            }
            Err(e) => {
                failures += 1;
                println!("{:>5} {:>4} error: {e}", job.depth, job.seed);
            }
        }
    }
    if failures > 0 {
        eprintln!("sweep: {failures} point(s) failed");
        std::process::exit(3);
    }
    std::process::exit(0);
}

fn main() {
    let args = parse_args();
    let source = match std::fs::read_to_string(&args.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.path);
            std::process::exit(1);
        }
    };
    let name = std::path::Path::new(&args.path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("kernel");
    let spec = match prevv::ir::parse::parse_kernel(name, &source) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}", e.render(&args.path, &source));
            std::process::exit(1);
        }
    };
    println!("parsed `{name}`:\n{}", prevv::ir::pretty::render(&spec));

    // Static analysis before synthesis: print the findings, refuse kernels
    // with error-severity diagnostics (run `prevv-lint` for details/JSON).
    let lint_opts = match &args.controller {
        Controller::Prevv(cfg) => prevv::AnalyzeOptions::for_config(cfg),
        _ => prevv::AnalyzeOptions::default(),
    };
    let lint = prevv::analyze::analyze(&spec, &lint_opts);
    if lint.is_empty() {
        println!("lint: clean\n");
    } else {
        println!("{}", lint.render(&args.path, Some(&source)));
    }
    if lint.has_errors() {
        eprintln!("refusing to synthesize: static analysis reported errors");
        std::process::exit(1);
    }

    // Batched mode: grid over PreVV depths and RAM-timing seeds, sharded
    // across cores; prints the result table and exits.
    if args.sweep {
        run_sweep(&spec, &args);
    }

    // PV2xx bounded model checking of the abstract premature-queue /
    // arbiter / squash protocol (opt-in: exhaustive exploration is far more
    // expensive than the static lints). Runs against the same controller
    // configuration the simulation will attach.
    if args.protocol {
        let mut popts = match &args.controller {
            Controller::Prevv(cfg) => prevv::analyze::ProtocolOptions::for_config(cfg),
            _ => prevv::analyze::ProtocolOptions::default(),
        };
        popts.threads = args.mc_threads;
        match prevv::analyze::check_protocol(&spec, &popts) {
            Ok(result) => {
                println!(
                    "protocol: explored {} abstract state(s), horizon {} iteration(s){}",
                    result.states,
                    result.bound,
                    if result.complete { "" } else { " (truncated)" }
                );
                // Deterministic reduction stats on stdout (stable for CI
                // diffs at any --mc-threads); wall-clock throughput on
                // stderr where run-to-run jitter cannot churn diffs.
                println!(
                    "protocol: {} of {} transition(s) explored after reduction (ratio {:.4}), \
                     {} pair(s) validated, {} discharged symbolically",
                    result.stats.transitions,
                    result.stats.enabled,
                    result.stats.reduction_ratio(),
                    result.stats.validated,
                    result.stats.pairs.discharged,
                );
                eprintln!(
                    "protocol: {:.0} states/s on {} thread(s)",
                    result.stats.states_per_sec(),
                    result.stats.threads
                );
                if !result.report.is_empty() {
                    println!("{}", result.report.render(&args.path, Some(&source)));
                }
                if result.report.has_errors() {
                    eprintln!("refusing to simulate: protocol model checker reported errors");
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("protocol model checker could not run: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut synth = match prevv::ir::synthesize(&spec) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("synthesis failed: {e}");
            std::process::exit(1);
        }
    };

    // Circuit-level lints (PV1xx) on the synthesized netlist, modeling the
    // controller that is about to be attached. Errors are structural
    // deadlocks or wiring faults: refuse before simulating.
    let circuit_lint = prevv::analyze::lint_circuit(
        &synth,
        &prevv::CircuitOptions {
            controller: args.controller.circuit_model(),
        },
    );
    if !circuit_lint.is_empty() {
        println!("{}", circuit_lint.render(&args.path, Some(&source)));
    }
    if circuit_lint.has_errors() {
        eprintln!("refusing to attach controller: circuit lints reported errors");
        std::process::exit(1);
    }

    let deps = &synth.deps;
    println!(
        "{} memory ops/iteration, {} ambiguous pair(s) ({} bypassed), {} iterations\n",
        spec.mem_ops_per_iter(),
        deps.pairs.len(),
        synth.bypassed.len(),
        spec.iteration_count()
    );

    // PV4xx static throughput prediction — runs on the bare netlist (the
    // perf pass models the premature queue itself), so it must happen
    // before the controller component is attached below. Only the PreVV
    // controller has a static model.
    let perf = match &args.controller {
        Controller::Prevv(cfg) => {
            let mut perf_report = prevv::analyze::diag::Report::default();
            let summary = prevv::analyze::lint_perf(
                &synth,
                &prevv::analyze::PerfOptions {
                    config: cfg.clone(),
                },
                &mut perf_report,
            );
            if !perf_report.is_empty() {
                println!("{}", perf_report.render(&args.path, Some(&source)));
            }
            Some(summary)
        }
        _ => None,
    };

    // Watch memory-port channels if a VCD was requested.
    let watch: Vec<_> = synth
        .interface
        .ports
        .iter()
        .flat_map(|p| {
            let mut v = vec![p.addr_in];
            v.extend(p.data_out);
            v
        })
        .collect();

    let controller_name = args.controller.name();
    let design = args
        .controller
        .area_kind()
        .map(|k| prevv::area::estimate(&synth, k));
    let ram = match &args.controller {
        Controller::Direct => {
            let (c, ram) =
                prevv::mem::DirectMemory::new(synth.interface.clone(), MemTiming::default());
            synth.netlist.add("mem", c);
            ram
        }
        Controller::Dynamatic { depth } => {
            let (c, ram) = Lsq::new(synth.interface.clone(), LsqConfig::dynamatic(*depth))
                .unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(1);
                });
            synth.netlist.add("lsq", c);
            ram
        }
        Controller::FastLsq { depth } => {
            let (c, ram) = Lsq::new(synth.interface.clone(), LsqConfig::fast(*depth))
                .unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(1);
                });
            synth.netlist.add("lsq", c);
            ram
        }
        Controller::Prevv(cfg) => {
            let (c, ram, _) =
                PrevvMemory::new(synth.interface.clone(), cfg.clone(), synth.bus.clone())
                    .unwrap_or_else(|e| {
                        eprintln!("{e}");
                        std::process::exit(1);
                    });
            synth.netlist.add("prevv", c);
            ram
        }
    };

    if let Some(path) = &args.dot {
        if let Err(e) = std::fs::write(path, viz::to_dot(&synth.netlist)) {
            eprintln!("cannot write {path}: {e}");
        } else {
            println!("wrote {path}");
        }
    }

    // Channel endpoint labels for the --stats stall table, captured before
    // the netlist moves into the simulator.
    let chan_desc: Vec<String> = {
        let mut labels: Vec<String> = vec![String::from("?"); synth.netlist.node_count()];
        for (n, label, comp) in synth.netlist.iter() {
            labels[n.index()] = format!("{label}({})", comp.type_name());
        }
        let ends = synth.netlist.channel_endpoints();
        (0..synth.netlist.channel_count())
            .map(|ch| {
                let name = |nodes: &[prevv::dataflow::NodeId]| {
                    nodes
                        .first()
                        .map_or("<open>", |n| labels[n.index()].as_str())
                        .to_string()
                };
                format!(
                    "{} -> {}",
                    name(&ends.producers[ch]),
                    name(&ends.consumers[ch])
                )
            })
            .collect()
    };

    let mut sim = match Simulator::new(synth.netlist, synth.bus) {
        Ok(s) => s.with_config(SimConfig {
            scheduler: args.scheduler,
            ..SimConfig::default()
        }),
        Err(e) => {
            eprintln!("invalid netlist: {e}");
            std::process::exit(1);
        }
    };
    if args.vcd.is_some() {
        sim.attach_recorder(TraceRecorder::new(watch));
    }
    let report = match sim.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simulation failed: {e}");
            std::process::exit(1);
        }
    };

    let gold = prevv::ir::golden::execute(&spec);
    let ram = ram.borrow();
    let arrays: Vec<Vec<i64>> = synth
        .interface
        .split_ram(ram.image())
        .into_iter()
        .map(<[i64]>::to_vec)
        .collect();
    let correct = arrays == gold.arrays;

    println!("controller: {controller_name}");
    println!("simulation: {report}");
    if let Some(summary) = &perf {
        println!(
            "throughput: measured II {:.2} over {} iterations vs predicted II {:.2} \
             (sound bound {:.2}, binding resource {})",
            summary.measured_ii(report.cycles),
            summary.iterations,
            summary.predicted_ii,
            summary.ii_bound,
            summary.binding_resource,
        );
        if let Some(d) = prevv::analyze::check_measured(summary, report.cycles) {
            let mut r = prevv::analyze::diag::Report::default();
            r.push(d);
            println!("{}", r.render(&args.path, Some(&source)));
        }
    }
    if args.stats && !report.stalled_channels.is_empty() {
        println!("most-stalled channels (top {TOP_STALLED}):");
        for (ch, stalls) in report.top_stalled(TOP_STALLED) {
            println!(
                "  c{:<4} {:>7} stall-cycle(s)  {}",
                ch.index(),
                stalls,
                chan_desc.get(ch.index()).map_or("?", String::as_str)
            );
        }
    }
    if let Some(d) = design {
        println!(
            "estimated:  {} @ CP {:.2} ns → {:.2} µs",
            d.total(),
            d.clock_period_ns,
            report.cycles as f64 * d.clock_period_ns / 1000.0
        );
    }
    println!("result matches golden model: {correct}");
    for (decl, arr) in spec.arrays.iter().zip(&arrays) {
        let preview: Vec<i64> = arr.iter().take(12).copied().collect();
        println!(
            "  {}[{}] = {preview:?}{}",
            decl.name,
            decl.len,
            if arr.len() > 12 { " …" } else { "" }
        );
    }

    if let Some(path) = &args.vcd {
        let rec = sim.take_recorder().expect("attached");
        if let Err(e) = std::fs::write(path, to_vcd(&rec, name)) {
            eprintln!("cannot write {path}: {e}");
        } else {
            println!("wrote {path}");
        }
    }
    if !correct {
        std::process::exit(3);
    }
}
