//! `runkernel` — the reproduction as a command-line tool: parse a kernel
//! source file (see `prevv_ir::parse` for the language), synthesize it,
//! attach a disambiguation controller, simulate, verify against the golden
//! model, and report resources/timing. Optionally dump the circuit as
//! Graphviz DOT and the memory-port activity as a VCD waveform.
//!
//! ```text
//! cargo run --release -p prevv-bench --bin runkernel -- \
//!     kernels/histogram.pvk --controller prevv16 --dot /tmp/c.dot --vcd /tmp/c.vcd
//! ```
//!
//! Controllers: `direct`, `dynamatic16`, `fast16`, `spec<depth>`,
//! `prevv<depth>` (e.g. `prevv16`, `prevv64`, `spec16`).
//!
//! Fuzz mode (`--fuzz N [--seed S]`) needs no kernel file: it generates `N`
//! kernels from the seed (`prevv_kernels::gen`), runs each through the
//! cross-backend differential oracle (`prevv::diffcheck`), and on the first
//! failure shrinks the kernel to a minimal reproducer and writes its `.pvk`
//! (`--repro`, default `target/fuzz_repro.pvk`). `--seed` accepts decimal,
//! `0x`-hex, or any other string (hashed deterministically — `0xPREVV`
//! works). `--corpus-out DIR` additionally writes every generated kernel
//! plus a `digests.tsv` of per-backend outcome digests, which is how
//! `tests/fuzz_corpus/` is (re)pinned.

use prevv::dataflow::trace::{to_vcd, TraceRecorder};
use prevv::dataflow::{sweep, viz, Scheduler, SimConfig, Simulator};
use prevv::{Controller, Lsq, LsqConfig, MemTiming, PrevvConfig, PrevvMemory};
use rand::{Rng, SeedableRng};

struct Args {
    path: Option<String>,
    controller: Controller,
    protocol: bool,
    mc_threads: usize,
    stats: bool,
    dot: Option<String>,
    vcd: Option<String>,
    scheduler: Scheduler,
    sweep: bool,
    depths: Vec<usize>,
    seeds: u64,
    threads: usize,
    fuzz: Option<usize>,
    fuzz_seed: u64,
    repro: String,
    corpus_out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: runkernel <file.pvk> [--controller direct|dynamatic16|fast16|spec<depth>|prevv<depth>] \
         [--protocol] [--mc-threads <n>] [--stats] [--dot <out.dot>] [--vcd <out.vcd>] \
         [--scheduler dense|event] \
         [--sweep [--depths <d,d,...>] [--seeds <n>] [--threads <n>]]\n\
       runkernel --fuzz <n> [--seed <seed>] [--repro <out.pvk>] [--corpus-out <dir>]"
    );
    std::process::exit(2);
}

/// The `--stats` table length: most-stalled channels worth printing.
const TOP_STALLED: usize = 8;

/// Default `--sweep` depth axis: the paper's two evaluated depths plus the
/// surrounding powers of two.
const SWEEP_DEPTHS: [usize; 4] = [8, 16, 32, 64];

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut controller = Controller::Prevv(PrevvConfig::prevv16());
    let mut protocol = false;
    let mut mc_threads = 0usize;
    let mut stats = false;
    let mut dot = None;
    let mut vcd = None;
    let mut scheduler = Scheduler::default();
    let mut sweep = false;
    let mut depths = SWEEP_DEPTHS.to_vec();
    let mut seeds = 1u64;
    let mut threads = 0usize;
    let mut fuzz = None;
    let mut fuzz_seed = 0u64;
    let mut repro = String::from("target/fuzz_repro.pvk");
    let mut corpus_out = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--protocol" => protocol = true,
            "--stats" => stats = true,
            "--sweep" => sweep = true,
            "--mc-threads" => {
                let v = args.next().unwrap_or_else(|| usage());
                mc_threads = v.parse().unwrap_or_else(|_| usage());
                protocol = true;
            }
            "--controller" => {
                let v = args.next().unwrap_or_else(|| usage());
                controller = match v.as_str() {
                    "direct" => Controller::Direct,
                    "dynamatic16" => Controller::Dynamatic { depth: 16 },
                    "fast16" => Controller::FastLsq { depth: 16 },
                    other => {
                        if let Some(depth) = other.strip_prefix("spec").and_then(|d| d.parse().ok())
                        {
                            Controller::SpecLsq { depth }
                        } else if let Some(depth) =
                            other.strip_prefix("prevv").and_then(|d| d.parse().ok())
                        {
                            Controller::Prevv(PrevvConfig::with_depth(depth))
                        } else {
                            usage()
                        }
                    }
                };
            }
            "--scheduler" => {
                scheduler = match args.next().unwrap_or_else(|| usage()).as_str() {
                    "dense" => Scheduler::Dense,
                    "event" => Scheduler::EventDriven,
                    _ => usage(),
                };
            }
            "--depths" => {
                let v = args.next().unwrap_or_else(|| usage());
                depths = v
                    .split(',')
                    .map(|d| d.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if depths.is_empty() {
                    usage();
                }
            }
            "--seeds" => {
                seeds = args
                    .next()
                    .unwrap_or_else(|| usage())
                    .parse()
                    .unwrap_or_else(|_| usage());
                if seeds == 0 {
                    usage();
                }
            }
            "--threads" => {
                threads = args
                    .next()
                    .unwrap_or_else(|| usage())
                    .parse()
                    .unwrap_or_else(|_| usage());
            }
            "--fuzz" => {
                let v = args.next().unwrap_or_else(|| usage());
                let n: usize = v.parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    usage();
                }
                fuzz = Some(n);
            }
            "--seed" => fuzz_seed = parse_seed(&args.next().unwrap_or_else(|| usage())),
            "--repro" => repro = args.next().unwrap_or_else(|| usage()),
            "--corpus-out" => corpus_out = Some(args.next().unwrap_or_else(|| usage())),
            "--dot" => dot = Some(args.next().unwrap_or_else(|| usage())),
            "--vcd" => vcd = Some(args.next().unwrap_or_else(|| usage())),
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            _ => usage(),
        }
    }
    if path.is_none() && fuzz.is_none() {
        usage();
    }
    Args {
        path,
        controller,
        protocol,
        mc_threads,
        stats,
        dot,
        vcd,
        scheduler,
        sweep,
        depths,
        seeds,
        threads,
        fuzz,
        fuzz_seed,
        repro,
        corpus_out,
    }
}

/// `--seed` accepts decimal, `0x`-hex, or any other string, which is hashed
/// (FNV-1a) so mnemonic seeds like `0xPREVV` are valid and deterministic.
fn parse_seed(s: &str) -> u64 {
    if let Ok(v) = s.parse::<u64>() {
        return v;
    }
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        if let Ok(v) = u64::from_str_radix(hex, 16) {
            return v;
        }
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Deterministic RAM-timing perturbation for the `--sweep` seed axis: seed 0
/// is the stock timing, every other seed draws latencies/bandwidth from a
/// splitmix stream keyed only on the seed — the same seed always yields the
/// same timing, so sweep output is reproducible anywhere.
fn seeded_timing(seed: u64) -> MemTiming {
    if seed == 0 {
        return MemTiming::default();
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    MemTiming {
        read_latency: rng.gen_range(1..=4u32),
        write_latency: rng.gen_range(1..=3u32),
        read_ports: rng.gen_range(1..=2u32),
        write_ports: 1,
    }
}

/// One grid point of a `--sweep` run, in deterministic axis-major order.
struct SweepJob {
    depth: usize,
    seed: u64,
}

/// Batched multi-config driver: a PreVV depth × RAM-timing-seed grid over
/// one kernel, sharded across worker threads. Each worker synthesizes,
/// simulates, and verifies its own circuit (netlists are thread-local by
/// construction); the result table is in grid order and byte-identical at
/// any `--threads` value.
fn run_sweep(spec: &prevv::KernelSpec, args: &Args) -> ! {
    let jobs: Vec<SweepJob> = args
        .depths
        .iter()
        .flat_map(|&depth| (0..args.seeds).map(move |seed| SweepJob { depth, seed }))
        .collect();
    let sim_config = SimConfig {
        scheduler: args.scheduler,
        ..SimConfig::default()
    };
    let worker = |job: &SweepJob| -> Result<prevv::RunResult, prevv::RunError> {
        let mut cfg = PrevvConfig::with_depth(job.depth);
        cfg.timing = seeded_timing(job.seed);
        prevv::run_kernel_with(
            spec,
            Controller::Prevv(cfg),
            &prevv::SynthOptions::default(),
            &sim_config,
        )
    };
    let results = if args.threads == 0 {
        sweep::run(&jobs, worker)
    } else {
        sweep::run_with_threads(&jobs, args.threads, worker)
    };

    println!(
        "sweep: {} point(s) ({} depth(s) x {} seed(s))",
        jobs.len(),
        args.depths.len(),
        args.seeds
    );
    println!("depth seed cycles transfers stalls squashes golden");
    let mut failures = 0usize;
    for (job, res) in jobs.iter().zip(&results) {
        match res {
            Ok(r) => {
                if !r.matches_golden {
                    failures += 1;
                }
                println!(
                    "{:>5} {:>4} {:>8} {:>9} {:>8} {:>8} {}",
                    job.depth,
                    job.seed,
                    r.report.cycles,
                    r.report.transfers,
                    r.report.stall_cycles,
                    r.report.squashes,
                    r.matches_golden
                );
            }
            Err(e) => {
                failures += 1;
                println!("{:>5} {:>4} error: {e}", job.depth, job.seed);
            }
        }
    }
    if failures > 0 {
        eprintln!("sweep: {failures} point(s) failed");
        std::process::exit(3);
    }
    std::process::exit(0);
}

/// Derives the i-th kernel seed from the base fuzz seed (splitmix64 mix —
/// adjacent base seeds give unrelated streams).
fn kernel_seed(base: u64, i: u64) -> u64 {
    let mut z = base ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `--fuzz N`: generate N kernels, run each through the differential
/// oracle, shrink and dump a `.pvk` reproducer on the first failure. With
/// `--corpus-out DIR`, also write every kernel and a digest manifest (the
/// pinned-corpus (re)generation path).
fn run_fuzz(count: usize, args: &Args) -> ! {
    use prevv::diffcheck::{check_kernel, DiffOptions};
    use prevv::kernels::gen;

    let opts = DiffOptions::default();
    // Corpus kernels stay small so the offline replay test is cheap.
    let cfg = if args.corpus_out.is_some() {
        gen::GenConfig::corpus()
    } else {
        gen::GenConfig::default()
    };
    println!(
        "fuzz: {count} kernel(s) from seed {:#x} ({} profile)",
        args.fuzz_seed,
        if args.corpus_out.is_some() {
            "corpus"
        } else {
            "default"
        }
    );
    // The oracle catches panics itself; silence the default hook so a
    // caught panic does not spray a backtrace per probe.
    std::panic::set_hook(Box::new(|_| {}));
    let mut manifest = String::new();
    for i in 0..count {
        let seed = kernel_seed(args.fuzz_seed, i as u64);
        let spec = gen::generate(seed, &cfg);
        let verdict = check_kernel(&spec, &opts);
        if !verdict.passed() {
            fail_and_shrink(&spec, seed, &verdict, &opts, args);
        }
        if let Some(dir) = &args.corpus_out {
            let file = format!("gen_{i:02}.pvk");
            if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| {
                std::fs::write(format!("{dir}/{file}"), prevv::ir::pretty::render(&spec))
            }) {
                eprintln!("cannot write corpus kernel {file}: {e}");
                std::process::exit(1);
            }
            for (backend, digest) in &verdict.digests {
                manifest.push_str(&format!("{file}\t{backend}\t{digest:#018x}\n"));
            }
        }
        if (i + 1) % 25 == 0 || i + 1 == count {
            eprintln!("fuzz: {}/{count} ok", i + 1);
        }
    }
    let _ = std::panic::take_hook();
    if let Some(dir) = &args.corpus_out {
        if let Err(e) = std::fs::write(format!("{dir}/digests.tsv"), manifest) {
            eprintln!("cannot write digest manifest: {e}");
            std::process::exit(1);
        }
        println!("fuzz: corpus written to {dir}");
    }
    println!("fuzz: {count}/{count} kernel(s) passed the differential oracle");
    std::process::exit(0);
}

/// Prints the verdict, greedily shrinks the kernel while the same failure
/// kind reproduces, writes the minimal `.pvk`, and exits nonzero.
fn fail_and_shrink(
    spec: &prevv::KernelSpec,
    seed: u64,
    verdict: &prevv::diffcheck::KernelVerdict,
    opts: &prevv::diffcheck::DiffOptions,
    args: &Args,
) -> ! {
    use prevv::diffcheck::check_kernel;
    use prevv::kernels::gen;

    eprintln!("fuzz: kernel seed {seed:#x} (`{}`) FAILED:", verdict.name);
    for f in &verdict.failures {
        eprintln!("  {f}");
    }
    let kind = verdict.failures[0].kind.clone();
    eprintln!("fuzz: shrinking against {kind:?} (budget 200 oracle runs)…");
    let small = gen::shrink_to_fixpoint(spec, 200, |c| {
        check_kernel(c, opts)
            .failures
            .iter()
            .any(|f| f.kind == kind)
    });
    let _ = std::panic::take_hook();
    let text = prevv::ir::pretty::render(&small);
    if let Some(parent) = std::path::Path::new(&args.repro).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&args.repro, &text) {
        Ok(()) => eprintln!("fuzz: minimal reproducer written to {}", args.repro),
        Err(e) => eprintln!("fuzz: cannot write reproducer {}: {e}", args.repro),
    }
    eprintln!("--- reproducer ---\n{text}");
    std::process::exit(3);
}

fn main() {
    let args = parse_args();
    if let Some(n) = args.fuzz {
        run_fuzz(n, &args);
    }
    let kpath = args.path.clone().unwrap_or_else(|| usage());
    let source = match std::fs::read_to_string(&kpath) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {kpath}: {e}");
            std::process::exit(1);
        }
    };
    let name = std::path::Path::new(&kpath)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("kernel");
    let spec = match prevv::ir::parse::parse_kernel(name, &source) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}", e.render(&kpath, &source));
            std::process::exit(1);
        }
    };
    println!("parsed `{name}`:\n{}", prevv::ir::pretty::render(&spec));

    // Static analysis before synthesis: print the findings, refuse kernels
    // with error-severity diagnostics (run `prevv-lint` for details/JSON).
    let lint_opts = match &args.controller {
        Controller::Prevv(cfg) => prevv::AnalyzeOptions::for_config(cfg),
        _ => prevv::AnalyzeOptions::default(),
    };
    let lint = prevv::analyze::analyze(&spec, &lint_opts);
    if lint.is_empty() {
        println!("lint: clean\n");
    } else {
        println!("{}", lint.render(&kpath, Some(&source)));
    }
    if lint.has_errors() {
        eprintln!("refusing to synthesize: static analysis reported errors");
        std::process::exit(1);
    }

    // Batched mode: grid over PreVV depths and RAM-timing seeds, sharded
    // across cores; prints the result table and exits.
    if args.sweep {
        run_sweep(&spec, &args);
    }

    // PV2xx bounded model checking of the abstract premature-queue /
    // arbiter / squash protocol (opt-in: exhaustive exploration is far more
    // expensive than the static lints). Runs against the same controller
    // configuration the simulation will attach.
    if args.protocol {
        let mut popts = match &args.controller {
            Controller::Prevv(cfg) => prevv::analyze::ProtocolOptions::for_config(cfg),
            _ => prevv::analyze::ProtocolOptions::default(),
        };
        popts.threads = args.mc_threads;
        match prevv::analyze::check_protocol(&spec, &popts) {
            Ok(result) => {
                println!(
                    "protocol: explored {} abstract state(s), horizon {} iteration(s){}",
                    result.states,
                    result.bound,
                    if result.complete { "" } else { " (truncated)" }
                );
                // Deterministic reduction stats on stdout (stable for CI
                // diffs at any --mc-threads); wall-clock throughput on
                // stderr where run-to-run jitter cannot churn diffs.
                println!(
                    "protocol: {} of {} transition(s) explored after reduction (ratio {:.4}), \
                     {} pair(s) validated, {} discharged symbolically",
                    result.stats.transitions,
                    result.stats.enabled,
                    result.stats.reduction_ratio(),
                    result.stats.validated,
                    result.stats.pairs.discharged,
                );
                eprintln!(
                    "protocol: {:.0} states/s on {} thread(s)",
                    result.stats.states_per_sec(),
                    result.stats.threads
                );
                if !result.report.is_empty() {
                    println!("{}", result.report.render(&kpath, Some(&source)));
                }
                if result.report.has_errors() {
                    eprintln!("refusing to simulate: protocol model checker reported errors");
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("protocol model checker could not run: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut synth = match prevv::ir::synthesize(&spec) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("synthesis failed: {e}");
            std::process::exit(1);
        }
    };

    // Circuit-level lints (PV1xx) on the synthesized netlist, modeling the
    // controller that is about to be attached. Errors are structural
    // deadlocks or wiring faults: refuse before simulating.
    let circuit_lint = prevv::analyze::lint_circuit(
        &synth,
        &prevv::CircuitOptions {
            controller: args.controller.circuit_model(),
        },
    );
    if !circuit_lint.is_empty() {
        println!("{}", circuit_lint.render(&kpath, Some(&source)));
    }
    if circuit_lint.has_errors() {
        eprintln!("refusing to attach controller: circuit lints reported errors");
        std::process::exit(1);
    }

    let deps = &synth.deps;
    println!(
        "{} memory ops/iteration, {} ambiguous pair(s) ({} bypassed), {} iterations\n",
        spec.mem_ops_per_iter(),
        deps.pairs.len(),
        synth.bypassed.len(),
        spec.iteration_count()
    );

    // PV4xx static throughput prediction — runs on the bare netlist (the
    // perf pass models the premature queue itself), so it must happen
    // before the controller component is attached below. Only the PreVV
    // controller has a static model.
    let perf = match &args.controller {
        Controller::Prevv(cfg) => {
            let mut perf_report = prevv::analyze::diag::Report::default();
            let summary = prevv::analyze::lint_perf(
                &synth,
                &prevv::analyze::PerfOptions {
                    config: cfg.clone(),
                },
                &mut perf_report,
            );
            if !perf_report.is_empty() {
                println!("{}", perf_report.render(&kpath, Some(&source)));
            }
            Some(summary)
        }
        _ => None,
    };

    // Watch memory-port channels if a VCD was requested.
    let watch: Vec<_> = synth
        .interface
        .ports
        .iter()
        .flat_map(|p| {
            let mut v = vec![p.addr_in];
            v.extend(p.data_out);
            v
        })
        .collect();

    let controller_name = args.controller.name();
    let design = args
        .controller
        .area_kind()
        .map(|k| prevv::area::estimate(&synth, k));
    let ram = match &args.controller {
        Controller::Direct => {
            let (c, ram) =
                prevv::mem::DirectMemory::new(synth.interface.clone(), MemTiming::default());
            synth.netlist.add("mem", c);
            ram
        }
        Controller::Dynamatic { depth } => {
            let (c, ram) = Lsq::new(synth.interface.clone(), LsqConfig::dynamatic(*depth))
                .unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(1);
                });
            synth.netlist.add("lsq", c);
            ram
        }
        Controller::FastLsq { depth } => {
            let (c, ram) = Lsq::new(synth.interface.clone(), LsqConfig::fast(*depth))
                .unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(1);
                });
            synth.netlist.add("lsq", c);
            ram
        }
        Controller::SpecLsq { depth } => {
            let (c, ram) = prevv::mem::SpecLsq::new(
                synth.interface.clone(),
                prevv::mem::SpecLsqConfig::speculative(*depth),
            )
            .unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(1);
            });
            synth.netlist.add("spec_lsq", c);
            ram
        }
        Controller::Prevv(cfg) => {
            let (c, ram, _) =
                PrevvMemory::new(synth.interface.clone(), cfg.clone(), synth.bus.clone())
                    .unwrap_or_else(|e| {
                        eprintln!("{e}");
                        std::process::exit(1);
                    });
            synth.netlist.add("prevv", c);
            ram
        }
    };

    if let Some(path) = &args.dot {
        if let Err(e) = std::fs::write(path, viz::to_dot(&synth.netlist)) {
            eprintln!("cannot write {path}: {e}");
        } else {
            println!("wrote {path}");
        }
    }

    // Channel endpoint labels for the --stats stall table, captured before
    // the netlist moves into the simulator.
    let chan_desc: Vec<String> = {
        let mut labels: Vec<String> = vec![String::from("?"); synth.netlist.node_count()];
        for (n, label, comp) in synth.netlist.iter() {
            labels[n.index()] = format!("{label}({})", comp.type_name());
        }
        let ends = synth.netlist.channel_endpoints();
        (0..synth.netlist.channel_count())
            .map(|ch| {
                let name = |nodes: &[prevv::dataflow::NodeId]| {
                    nodes
                        .first()
                        .map_or("<open>", |n| labels[n.index()].as_str())
                        .to_string()
                };
                format!(
                    "{} -> {}",
                    name(&ends.producers[ch]),
                    name(&ends.consumers[ch])
                )
            })
            .collect()
    };

    let mut sim = match Simulator::new(synth.netlist, synth.bus) {
        Ok(s) => s.with_config(SimConfig {
            scheduler: args.scheduler,
            ..SimConfig::default()
        }),
        Err(e) => {
            eprintln!("invalid netlist: {e}");
            std::process::exit(1);
        }
    };
    if args.vcd.is_some() {
        sim.attach_recorder(TraceRecorder::new(watch));
    }
    let report = match sim.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simulation failed: {e}");
            std::process::exit(1);
        }
    };

    let gold = prevv::ir::golden::execute(&spec);
    let ram = ram.borrow();
    let arrays: Vec<Vec<i64>> = synth
        .interface
        .split_ram(ram.image())
        .into_iter()
        .map(<[i64]>::to_vec)
        .collect();
    let correct = arrays == gold.arrays;

    println!("controller: {controller_name}");
    println!("simulation: {report}");
    if let Some(summary) = &perf {
        println!(
            "throughput: measured II {:.2} over {} iterations vs predicted II {:.2} \
             (sound bound {:.2}, binding resource {})",
            summary.measured_ii(report.cycles),
            summary.iterations,
            summary.predicted_ii,
            summary.ii_bound,
            summary.binding_resource,
        );
        if let Some(d) = prevv::analyze::check_measured(summary, report.cycles) {
            let mut r = prevv::analyze::diag::Report::default();
            r.push(d);
            println!("{}", r.render(&kpath, Some(&source)));
        }
    }
    if args.stats && !report.stalled_channels.is_empty() {
        println!("most-stalled channels (top {TOP_STALLED}):");
        for (ch, stalls) in report.top_stalled(TOP_STALLED) {
            println!(
                "  c{:<4} {:>7} stall-cycle(s)  {}",
                ch.index(),
                stalls,
                chan_desc.get(ch.index()).map_or("?", String::as_str)
            );
        }
    }
    if let Some(d) = design {
        println!(
            "estimated:  {} @ CP {:.2} ns → {:.2} µs",
            d.total(),
            d.clock_period_ns,
            report.cycles as f64 * d.clock_period_ns / 1000.0
        );
    }
    println!("result matches golden model: {correct}");
    for (decl, arr) in spec.arrays.iter().zip(&arrays) {
        let preview: Vec<i64> = arr.iter().take(12).copied().collect();
        println!(
            "  {}[{}] = {preview:?}{}",
            decl.name,
            decl.len,
            if arr.len() > 12 { " …" } else { "" }
        );
    }

    if let Some(path) = &args.vcd {
        let rec = sim.take_recorder().expect("attached");
        if let Err(e) = std::fs::write(path, to_vcd(&rec, name)) {
            eprintln!("cannot write {path}: {e}");
        } else {
            println!("wrote {path}");
        }
    }
    if !correct {
        std::process::exit(3);
    }
}
