//! Edge-deployment analysis: the paper's §I motivation quantified.
//!
//! Prices every paper kernel under the four configurations and asks, per
//! device, whether the design fits (80 % routable ceiling) and how many
//! independent accelerator instances fit — the reason "high-performance
//! FPGA accelerators must reserve significant space for LSQs, making them
//! incompatible with edge devices".
//!
//! Run with `cargo run --release -p prevv-bench --bin utilization`.

use prevv::area::{estimate, ControllerKind, Device};
use prevv::ir::synthesize;
use prevv::kernels::paper;
use prevv_bench::table::TextTable;

fn main() {
    let devices = [Device::XC7A35T, Device::XC7A100T, Device::XC7K160T];
    let kinds = [
        ("[8] LSQ16", ControllerKind::FastLsq { depth: 16 }),
        (
            "PreVV16",
            ControllerKind::Prevv {
                depth: 16,
                pair_reduction: true,
            },
        ),
        (
            "PreVV64",
            ControllerKind::Prevv {
                depth: 64,
                pair_reduction: true,
            },
        ),
    ];

    for device in devices {
        println!("== {device} ==\n");
        let mut t = TextTable::new(&["benchmark", "config", "LUTs", "util", "fits?", "instances"]);
        for spec in paper::all_default() {
            let synth = match synthesize(&spec) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            };
            for (name, kind) in kinds {
                let total = estimate(&synth, kind).total();
                t.row(&[
                    spec.name.clone(),
                    name.to_string(),
                    total.luts.to_string(),
                    format!("{:.1}%", device.lut_utilization(total) * 100.0),
                    if device.fits(total) { "yes" } else { "NO" }.to_string(),
                    device.instances(total).to_string(),
                ]);
            }
        }
        println!("{t}");
    }
    println!(
        "Reading: on the edge-class xc7a35t the LSQ designs do not fit at all,\n\
         while PreVV16 fits most kernels — the paper's edge-device argument."
    );
}
