//! The paper's published numbers (Tables I and II), used as reference
//! columns in the regenerated tables and by EXPERIMENTS.md.

/// Benchmark names in the paper's row order.
pub const BENCHMARKS: [&str; 5] = ["polyn_mult", "2mm", "3mm", "gaussian", "triangular"];

/// One row of the paper's Table I (resources).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperResources {
    /// LUTs for \[15\], \[8\], PreVV16, PreVV64.
    pub luts: [u64; 4],
    /// FFs for \[15\], \[8\], PreVV16, PreVV64.
    pub ffs: [u64; 4],
}

/// Paper Table I, rows in [`BENCHMARKS`] order.
pub const TABLE1: [PaperResources; 5] = [
    PaperResources {
        luts: [20086, 21567, 14564, 17859],
        ffs: [2009, 2101, 1251, 1785],
    },
    PaperResources {
        luts: [39330, 22190, 10487, 14518],
        ffs: [8918, 8715, 4014, 4687],
    },
    PaperResources {
        luts: [57212, 39742, 24157, 27842],
        ffs: [9771, 7661, 3847, 4494],
    },
    PaperResources {
        luts: [18383, 19665, 10687, 13697],
        ffs: [4339, 4620, 2451, 2845],
    },
    PaperResources {
        luts: [19830, 20581, 9814, 15648],
        ffs: [5921, 6078, 3951, 4589],
    },
];

/// One row of the paper's Table II (timing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperTiming {
    /// Cycle counts for \[15\], \[8\], PreVV16, PreVV64.
    pub cycles: [u64; 4],
    /// Clock periods (ns).
    pub cp_ns: [f64; 4],
    /// Execution times (µs).
    pub exec_us: [f64; 4],
}

/// Paper Table II, rows in [`BENCHMARKS`] order.
pub const TABLE2: [PaperTiming; 5] = [
    PaperTiming {
        cycles: [2701, 2401, 2512, 2314],
        cp_ns: [7.26, 7.24, 7.2, 7.2],
        exec_us: [19.61, 17.38, 18.09, 16.66],
    },
    PaperTiming {
        cycles: [3231, 2498, 2789, 2471],
        cp_ns: [7.80, 7.77, 7.68, 7.63],
        exec_us: [25.20, 19.41, 21.42, 18.85],
    },
    PaperTiming {
        cycles: [4382, 2498, 2789, 2471],
        cp_ns: [8.29, 7.78, 7.7, 7.72],
        exec_us: [36.33, 19.43, 21.48, 19.08],
    },
    PaperTiming {
        cycles: [7651, 6871, 8754, 6681],
        cp_ns: [8.16, 8.16, 8.06, 8.06],
        exec_us: [62.43, 56.07, 70.56, 53.85],
    },
    PaperTiming {
        cycles: [9895, 9892, 9912, 9812],
        cp_ns: [9.18, 7.36, 7.31, 7.31],
        exec_us: [90.84, 72.81, 72.46, 71.73],
    },
];

/// The paper's headline geomean reductions vs. \[8\]: (PreVV16 LUT,
/// PreVV64 LUT, PreVV16 FF, PreVV64 FF).
pub const GEOMEAN_REDUCTIONS: (f64, f64, f64, f64) = (0.4375, 0.2645, 0.4470, 0.3354);

/// Fig. 1's claim: LSQ consumes more than this fraction of Dynamatic
/// circuit resources.
pub const FIG1_LSQ_SHARE: f64 = 0.80;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geomean;

    #[test]
    fn paper_geomeans_are_consistent_with_table1() {
        // Recompute the paper's own geomean LUT reduction of PreVV16 vs [8]
        // from its Table I rows; it should be near the quoted 43.75%.
        let ratios = TABLE1.iter().map(|r| r.luts[2] as f64 / r.luts[1] as f64);
        let g = 1.0 - geomean(ratios);
        assert!((g - 0.4375).abs() < 0.02, "recomputed {g:.4}");
    }

    #[test]
    fn exec_time_columns_multiply_out() {
        for row in &TABLE2 {
            for k in 0..4 {
                let expect = row.cycles[k] as f64 * row.cp_ns[k] / 1000.0;
                assert!(
                    (expect - row.exec_us[k]).abs() / row.exec_us[k] < 0.02,
                    "cycles × CP ≈ exec time ({expect:.2} vs {:.2})",
                    row.exec_us[k]
                );
            }
        }
    }
}
