//! # prevv-bench — experiment harness
//!
//! Library functions that regenerate every table and figure of the paper,
//! returning structured data; the `fig1`, `table1`, `table2`, `fig7`, and
//! `ablation` binaries print them alongside the paper's published numbers.
//! EXPERIMENTS.md records both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod paper_data;
pub mod table;

/// Geometric mean of a sequence of positive ratios.
///
/// ```
/// let g = prevv_bench::geomean([2.0, 8.0]);
/// assert!((g - 4.0).abs() < 1e-9);
/// ```
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        assert!(v > 0.0, "geomean needs positive values");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return 1.0;
    }
    (log_sum / n as f64).exp()
}

/// Percentage-change string in the paper's style (`-43.91%` / `+4.05%`).
pub fn pct(ratio: f64) -> String {
    let delta = (ratio - 1.0) * 100.0;
    if delta >= 0.0 {
        format!("+{delta:.2}%")
    } else {
        format!("{delta:.2}%")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values_is_identity() {
        assert!((geomean([3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
    }

    #[test]
    fn pct_formats_like_the_paper() {
        assert_eq!(pct(0.5609), "-43.91%");
        assert_eq!(pct(1.0405), "+4.05%");
    }
}
