//! Minimal plain-text table rendering for the experiment binaries.

/// A simple left-aligned text table.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are converted with `ToString`).
    pub fn row<S: ToString>(&mut self, cells: &[S]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(S::to_string).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(r[c].len());
            }
        }
        let line = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(c, s)| format!("{:width$}", s, width = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&line(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&line(r));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(&["a", "1"]).row(&["long-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("long-name"));
        // Columns align: "value" starts at the same offset in all rows.
        let off = lines[0].find("value").expect("header");
        assert_eq!(&lines[2][off..off + 1], "1");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only-one"]);
    }
}
