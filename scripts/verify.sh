#!/usr/bin/env bash
# Full verification: tier-1 (build + tests), lints on the code, and lints
# on the kernels — kernel-level PV0xx and circuit-level PV1xx alike. Run
# from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> lint-kernels (stock kernels must be error-free, circuit pass included)"
out=$(cargo run -q --release -p prevv-analyze --bin prevv-lint -- \
    --circuit --format json kernels/*.pvk)
# The JSON document must parse and report zero error-severity findings.
echo "$out" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
errors = doc["summary"]["errors"]
warnings = doc["summary"]["warnings"]
nfiles = len(doc["files"])
if errors:
    json.dump(doc, sys.stderr, indent=2)
    sys.exit(f"\nstock kernels reported {errors} error(s)")
print(f"    {nfiles} kernels, {errors} errors, {warnings} warnings")
'

echo "==> lint-kernels (negative fixtures must each fail)"
lint_must_fail() {
  if cargo run -q --release -p prevv-analyze --bin prevv-lint -- "$@" \
      >/dev/null 2>&1; then
    echo "error: prevv-lint $* unexpectedly passed" >&2
    exit 1
  fi
  echo "    refused: $*"
}
lint_must_fail kernels/bad/oob.pvk
lint_must_fail kernels/bad/undeclared.pvk
lint_must_fail --no-fake-tokens kernels/bad/guarded_nofake.pvk
lint_must_fail --circuit kernels/bad/undersized_queue.pvk
lint_must_fail --circuit --controller direct kernels/bad/combinational_loop.pvk

echo "==> protocol model checker (stock kernels must prove PV201-PV204 clean at the deep default)"
out=$(cargo run -q --release -p prevv-analyze --bin prevv-lint -- \
    --protocol --format json kernels/*.pvk)
echo "$out" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
errors = doc["summary"]["errors"]
nfiles = len(doc["files"])
proto = doc["summary"]["protocol"]
if errors:
    json.dump(doc, sys.stderr, indent=2)
    sys.exit(f"\nprotocol pass reported {errors} error(s) on stock kernels")
if proto["truncated_by_budget"]:
    sys.exit("state budget truncated the stock-kernel proof")
states, ratio = proto["states"], proto["reduction_ratio"]
discharged, conservative = proto["pairs"]["discharged"], proto["pairs"]["conservative"]
print(f"    {nfiles} kernels protocol-clean within the exploration bound")
print(f"    {states} states, reduction ratio {ratio}, "
      f"{discharged}/{conservative} pairs discharged")
'

echo "==> protocol model checker (collision audit must count zero)"
out=$(cargo run -q --release -p prevv-analyze --bin prevv-lint -- \
    --protocol --mc-audit --format json kernels/*.pvk)
echo "$out" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
collisions = doc["summary"]["protocol"]["audit_collisions"]
if collisions != 0:
    sys.exit(f"fingerprint collision audit counted {collisions} collision(s)")
print("    0 fingerprint collisions across all stock kernels")
'

echo "==> protocol model checker (bad fixtures must each fail)"
lint_must_fail --protocol --no-forwarding kernels/bad/replay_livelock.pvk
lint_must_fail --protocol --depth 2 kernels/bad/queue_too_small_mc.pvk
lint_must_fail --protocol --no-forwarding kernels/bad/deep_wedge.pvk

echo "==> checker throughput -> BENCH_modelcheck.json"
out=$(cargo run -q --release -p prevv-analyze --bin prevv-lint -- \
    --protocol --mc-depth 6 --format json kernels/fig2a.pvk)
echo "$out" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
proto = doc["summary"]["protocol"]
bench = {
    "bench": "modelcheck",
    "workload": "fig2a --mc-depth 6",
    "states": proto["states"],
    "transitions": proto["transitions"],
    "enabled": proto["enabled"],
    "reduction_ratio": proto["reduction_ratio"],
    "states_per_sec": proto["states_per_sec"],
    "threads": proto["threads"],
}
with open("BENCH_modelcheck.json", "w") as f:
    json.dump(bench, f, indent=2)
    f.write("\n")
states, sps, ratio = proto["states"], proto["states_per_sec"], proto["reduction_ratio"]
print(f"    {states} states at {sps:.0f} states/s (ratio {ratio})")
'

echo "verify: OK"
