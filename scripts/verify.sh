#!/usr/bin/env bash
# Full verification: tier-1 (build + tests), lints on the code, and lints
# on the kernels — kernel-level PV0xx and circuit-level PV1xx alike. Run
# from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> differential fuzz oracle (200 generated kernels, pinned seed)"
# Every generated kernel must agree byte-for-byte across the golden
# interpreter, both schedulers, and all four memory subsystems, with
# lint/model-check verdicts consistent with observed behavior. On failure
# runkernel shrinks the offender and writes the minimal reproducer to
# target/fuzz_repro.pvk (uploaded as a CI artifact).
if ! ./target/release/runkernel --fuzz 200 --seed 0xPREVV \
    --repro target/fuzz_repro.pvk; then
  echo "error: fuzz oracle failed; shrunk reproducer at target/fuzz_repro.pvk" >&2
  exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> lint-kernels (stock kernels must be error-free, circuit pass included)"
out=$(cargo run -q --release -p prevv-analyze --bin prevv-lint -- \
    --circuit --format json kernels/*.pvk)
# The JSON document must parse and report zero error-severity findings.
echo "$out" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
errors = doc["summary"]["errors"]
warnings = doc["summary"]["warnings"]
nfiles = len(doc["files"])
if errors:
    json.dump(doc, sys.stderr, indent=2)
    sys.exit(f"\nstock kernels reported {errors} error(s)")
print(f"    {nfiles} kernels, {errors} errors, {warnings} warnings")
'

echo "==> lint-kernels (negative fixtures must each fail)"
lint_must_fail() {
  if cargo run -q --release -p prevv-analyze --bin prevv-lint -- "$@" \
      >/dev/null 2>&1; then
    echo "error: prevv-lint $* unexpectedly passed" >&2
    exit 1
  fi
  echo "    refused: $*"
}
lint_must_fail kernels/bad/oob.pvk
lint_must_fail kernels/bad/undeclared.pvk
lint_must_fail --deny-warnings kernels/bad/infeasible_guard.pvk
lint_must_fail --deny-warnings kernels/bad/range_oob.pvk
lint_must_fail --no-fake-tokens kernels/bad/guarded_nofake.pvk
lint_must_fail --circuit kernels/bad/undersized_queue.pvk
lint_must_fail --circuit --controller direct kernels/bad/combinational_loop.pvk

echo "==> protocol model checker (stock kernels must prove PV201-PV204 clean at the deep default)"
out=$(cargo run -q --release -p prevv-analyze --bin prevv-lint -- \
    --protocol --format json kernels/*.pvk)
echo "$out" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
errors = doc["summary"]["errors"]
nfiles = len(doc["files"])
proto = doc["summary"]["protocol"]
if errors:
    json.dump(doc, sys.stderr, indent=2)
    sys.exit(f"\nprotocol pass reported {errors} error(s) on stock kernels")
if proto["truncated_by_budget"]:
    sys.exit("state budget truncated the stock-kernel proof")
states, ratio = proto["states"], proto["reduction_ratio"]
discharged, conservative = proto["pairs"]["discharged"], proto["pairs"]["conservative"]
print(f"    {nfiles} kernels protocol-clean within the exploration bound")
print(f"    {states} states, reduction ratio {ratio}, "
      f"{discharged}/{conservative} pairs discharged")
tri = [f for f in doc["files"] if f["file"].endswith("triangular.pvk")]
pv502 = sum(1 for f in tri
            for d in f["report"]["diagnostics"] if d["code"] == "PV502")
if pv502 < 1:
    sys.exit("triangular.pvk must gain at least one PV502 invariant "
             "discharge within the horizon")
print(f"    triangular.pvk: {pv502} PV502 invariant discharge(s)")
'

echo "==> protocol model checker (collision audit must count zero)"
out=$(cargo run -q --release -p prevv-analyze --bin prevv-lint -- \
    --protocol --mc-audit --format json kernels/*.pvk)
echo "$out" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
collisions = doc["summary"]["protocol"]["audit_collisions"]
if collisions != 0:
    sys.exit(f"fingerprint collision audit counted {collisions} collision(s)")
print("    0 fingerprint collisions across all stock kernels")
'

echo "==> protocol model checker (bad fixtures must each fail)"
lint_must_fail --protocol --no-forwarding kernels/bad/replay_livelock.pvk
lint_must_fail --protocol --depth 2 kernels/bad/queue_too_small_mc.pvk
lint_must_fail --protocol --no-forwarding kernels/bad/deep_wedge.pvk

echo "==> PV4xx static throughput (stock kernels predicted within 10% of simulation)"
cargo test -q --release --test perf_soundness \
    stock_kernel_predictions_land_within_ten_percent >/dev/null
echo "    5 kernels: predicted cycles within 10% of the cycle-accurate simulator"
out=$(cargo run -q --release -p prevv-analyze --bin prevv-lint -- \
    --perf --format json kernels/*.pvk)
echo "$out" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
if doc["summary"]["errors"]:
    json.dump(doc, sys.stderr, indent=2)
    sys.exit("\nperf pass reported errors on stock kernels")
perf = doc["summary"]["perf"]
bound, pred, res = perf["ii_bound"], perf["predicted_ii"], perf["binding_resource"]
if not (bound >= 1.0 and pred >= bound):
    sys.exit(f"implausible perf summary: {perf}")
print(f"    worst kernel: II bound {bound:.2f}, predicted II {pred:.2f} ({res})")
'

echo "==> PV4xx static throughput (undersized queue must be refused)"
lint_must_fail --circuit --perf --deny-warnings --depth 4 \
    kernels/bad/throughput_cliff.pvk

echo "==> prevv-lint --fix (machine-applicable fixes must converge on scratch copies)"
fixdir=$(mktemp -d)
trap 'rm -rf "$fixdir"' EXIT
cp kernels/bad/infeasible_guard.pvk kernels/bad/throughput_cliff.pvk "$fixdir/"
cargo run -q --release -p prevv-analyze --bin prevv-lint -- \
    --fix "$fixdir/infeasible_guard.pvk" >/dev/null
cargo run -q --release -p prevv-analyze --bin prevv-lint -- \
    --circuit --perf --fix "$fixdir/throughput_cliff.pvk" >/dev/null
# The patched copies must re-lint clean of the codes that were fixed:
# PV501's dead statement is gone, and the rewritten depth_q directive
# (4 -> matched 8) silences both PV402 and the PV104 capacity warning.
out=$(cargo run -q --release -p prevv-analyze --bin prevv-lint -- \
    --format json "$fixdir/infeasible_guard.pvk")
if grep -q PV501 <<<"$out"; then
  echo "error: fixed infeasible_guard.pvk still reports PV501" >&2
  exit 1
fi
out=$(cargo run -q --release -p prevv-analyze --bin prevv-lint -- \
    --circuit --perf --format json "$fixdir/throughput_cliff.pvk")
if grep -qE 'PV402|PV104' <<<"$out"; then
  echo "error: fixed throughput_cliff.pvk still reports PV402/PV104" >&2
  exit 1
fi
if ! grep -q 'depth_q = 8;' "$fixdir/throughput_cliff.pvk"; then
  echo "error: --fix did not rewrite the depth_q directive" >&2
  exit 1
fi
# Record what --fix changed, for the CI artifact.
mkdir -p target
{
  diff -u kernels/bad/infeasible_guard.pvk "$fixdir/infeasible_guard.pvk" || true
  diff -u kernels/bad/throughput_cliff.pvk "$fixdir/throughput_cliff.pvk" || true
} > target/fixed_fixtures.diff
echo "    2 fixture copies fixed, re-lint clean (diff in target/fixed_fixtures.diff)"

echo "==> checker throughput -> BENCH_modelcheck.json"
# Best-of-N over the unreduced fig2a space (the largest reachable space a
# stock kernel offers); best-of suppresses scheduler noise on a shared box.
# The previous run's figure (if any) is read first so the JSON records the
# states/sec delta across the change under test.
prev_sps=$(python3 -c '
import json
try:
    doc = json.load(open("BENCH_modelcheck.json"))
    if doc["workload"] == "fig2a --mc-no-por --mc-depth 8, best of 5":
        print(doc["states_per_sec"])
    else:
        print("")
except Exception:
    print("")
' 2>/dev/null || true)
best=""
for _ in 1 2 3 4 5; do
  out=$(cargo run -q --release -p prevv-analyze --bin prevv-lint -- \
      --protocol --mc-no-por --mc-depth 8 --format json kernels/fig2a.pvk)
  best=$(PREV_BEST="$best" python3 -c '
import json, os, sys
doc = json.load(sys.stdin)
sps = doc["summary"]["protocol"]["states_per_sec"]
prev = os.environ.get("PREV_BEST") or "0"
print(max(sps, float(prev)))
' <<<"$out")
done
echo "$out" | PREV_SPS="$prev_sps" BEST_SPS="$best" python3 -c '
import json, os, sys
doc = json.load(sys.stdin)
proto = doc["summary"]["protocol"]
best = float(os.environ["BEST_SPS"])
prev = os.environ.get("PREV_SPS") or ""
bench = {
    "bench": "modelcheck",
    "workload": "fig2a --mc-no-por --mc-depth 8, best of 5",
    "states": proto["states"],
    "transitions": proto["transitions"],
    "enabled": proto["enabled"],
    "reduction_ratio": proto["reduction_ratio"],
    "states_per_sec": best,
    "states_per_sec_prev": float(prev) if prev else None,
    "states_per_sec_delta_pct": round((best / float(prev) - 1.0) * 100, 1)
    if prev else None,
    "threads": proto["threads"],
}
with open("BENCH_modelcheck.json", "w") as f:
    json.dump(bench, f, indent=2)
    f.write("\n")
states = proto["states"]
delta = bench["states_per_sec_delta_pct"]
tail = f" ({delta:+.1f}% vs previous run)" if prev else " (no previous run to compare)"
print(f"    {states} states at {best:.0f} states/s" + tail)
'

echo "==> simulator throughput -> BENCH_sim.json"
# Engine-only cycles/sec, dense sweep vs event-driven dirty set, on fig2a
# under the PreVV controller (see crates/bench/benches/sim.rs for the two
# timing regimes). The bench itself does best-of-5 and cross-checks that
# both schedulers agree on cycle counts and golden memory images. The gate:
# the event-driven default must never drop below dense throughput on the
# latency-bound (dram) workload, nor on the generated-kernel sweep
# (irregular fuzzer shapes under the same timing regime).
prev_cps=$(python3 -c '
import json
try:
    doc = json.load(open("BENCH_sim.json"))
    if doc["workload"] == "fig2a n=256 prevv16, engine-only, best of 5":
        print(doc["dram_event_cps"])
    else:
        print("")
except Exception:
    print("")
' 2>/dev/null || true)
out=$(cargo bench -q -p prevv-bench --bench sim 2>/dev/null | grep '^BENCH_SIM_JSON ')
echo "${out#BENCH_SIM_JSON }" | PREV_CPS="$prev_cps" python3 -c '
import json, os, sys
doc = json.load(sys.stdin)
dense, event = doc["dram_dense_cps"], doc["dram_event_cps"]
if event < dense:
    sys.exit(f"event-driven scheduler slower than dense on the latency-bound "
             f"workload: {event:.0f} < {dense:.0f} cycles/s")
gdense, gevent = doc["gen_dense_cps"], doc["gen_event_cps"]
if gevent < gdense:
    sys.exit(f"event-driven scheduler slower than dense on the generated "
             f"sweep: {gevent:.0f} < {gdense:.0f} cycles/s")
prev = os.environ.get("PREV_CPS") or ""
bench = {"bench": "sim"}
bench.update(doc)
bench["dram_event_cps_prev"] = float(prev) if prev else None
bench["dram_event_cps_delta_pct"] = (
    round((event / float(prev) - 1.0) * 100, 1) if prev else None)
with open("BENCH_sim.json", "w") as f:
    json.dump(bench, f, indent=2)
    f.write("\n")
delta = bench["dram_event_cps_delta_pct"]
tail = (f" ({delta:+.1f}% vs previous run)" if prev
        else " (no previous run to compare)")
print(f"    dram: dense {dense:.0f} c/s, event {event:.0f} c/s "
      f"({event / dense:.2f}x)" + tail)
print(f"    gen sweep: dense {gdense:.0f} c/s, event {gevent:.0f} c/s "
      f"({gevent / gdense:.2f}x)")
'

echo "verify: OK"
