#!/usr/bin/env bash
# Full verification: tier-1 (build + tests), lints on the code, and lints
# on the kernels. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> lint-kernels (stock kernels must be error-free)"
cargo run -q --release -p prevv-analyze --bin prevv-lint -- kernels/*.pvk

echo "==> lint-kernels (negative fixtures must fail)"
if cargo run -q --release -p prevv-analyze --bin prevv-lint -- \
    --no-fake-tokens kernels/bad/*.pvk >/dev/null 2>&1; then
  echo "error: kernels/bad fixtures unexpectedly linted clean" >&2
  exit 1
fi

echo "verify: OK"
