//! Choosing `depth_q` (paper §V-A): sweep the premature queue depth on a
//! hazard-heavy kernel and compare the empirical optimum with the paper's
//! matched-pair model (Def. 2, Eq. 6–7).
//!
//! ```text
//! cargo run --release --example depth_sweep
//! ```

use prevv::kernels::paper;
use prevv::prevv_core_crate::sizing::PairTiming;
use prevv::{evaluate, Controller, PrevvConfig};

fn main() -> Result<(), prevv::RunError> {
    let spec = paper::polyn_mult(14);
    let iters = spec.iteration_count() as f64;
    println!(
        "kernel: {} ({} iterations) — LUTs vs cycles across depth_q\n",
        spec.name,
        spec.iteration_count()
    );
    println!(
        "{:>8} {:>9} {:>9} {:>9} {:>11} {:>11}",
        "depth_q", "cycles", "LUTs", "squashes", "full-stalls", "exec (us)"
    );

    let mut best: Option<(usize, u64, f64)> = None;
    let mut measured: Vec<(usize, u64, u64)> = Vec::new();
    // depth_q must at least hold one iteration's memory ops (4 here).
    for depth in [4, 8, 16, 32, 64, 128] {
        let e = evaluate(&spec, Controller::Prevv(PrevvConfig::with_depth(depth)))?;
        assert!(e.run.matches_golden);
        let stats = e.run.prevv.expect("prevv stats");
        println!(
            "{:>8} {:>9} {:>9} {:>9} {:>11} {:>11.2}",
            depth,
            e.run.report.cycles,
            e.design.total().luts,
            stats.squashes,
            stats.queue_full_stalls,
            e.exec_time_us
        );
        measured.push((depth, e.run.report.cycles, stats.squashes));
        if best.is_none_or(|(_, _, t)| e.exec_time_us < t) {
            best = Some((depth, e.run.report.cycles, e.exec_time_us));
        }
    }
    let (best_depth, best_cycles, _) = best.expect("swept at least one depth");

    // Feed measured rates into the paper's matched-pair model.
    let timing = PairTiming {
        t_org: best_cycles as f64 / iters,
        squash_probability: measured
            .iter()
            .find(|(d, ..)| *d == best_depth)
            .map_or(0.0, |(_, _, s)| *s as f64 / iters),
        t_token: best_cycles as f64 / iters * 8.0,
    };
    println!(
        "\nempirical best depth (by exec time): {best_depth}\n\
         matched-pair model (Eq. 6-7) recommends: {} (t_p = {:.2} cycles, t_w at depth 16 = {:.2})",
        timing.matched_depth(),
        timing.pair_time(),
        timing.wait_time(16)
    );
    println!(
        "\nShape to observe: cycles fall steeply until the queue stops being the\n\
         bottleneck, then flatten, while LUTs keep growing linearly — the paper's\n\
         resource/timing trade-off, with 16 and 64 as its chosen operating points."
    );
    Ok(())
}
