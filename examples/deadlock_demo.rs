//! The paper's §V-C deadlock, live: a guarded update whose untaken
//! iterations starve the arbiter. With fake tokens the circuit completes;
//! without them the premature queue fills and the pipeline wedges — caught
//! by the simulator's no-progress watchdog.
//!
//! ```text
//! cargo run --release --example deadlock_demo
//! ```

use prevv::kernels::extra;
use prevv::{run_kernel_with, Controller, PrevvConfig, SimConfig, SynthOptions};

fn main() {
    // if (i % 3 == 0) a[3] += 1  — two of three iterations send no memory
    // traffic for the guarded statement.
    let spec = extra::guarded_update(96, 3);
    let config = || Controller::Prevv(PrevvConfig::with_depth(4));
    let sim = SimConfig {
        max_cycles: 200_000,
        watchdog: 1_500,
        ..SimConfig::default()
    };

    println!("guarded kernel, premature queue depth 4\n");

    let with_fakes = run_kernel_with(&spec, config(), &SynthOptions::default(), &sim)
        .expect("fake tokens keep the queue draining");
    let stats = with_fakes.prevv.expect("prevv stats");
    println!(
        "fake tokens ON :  completed in {} cycles, {} fake tokens delivered, result correct: {}",
        with_fakes.report.cycles, stats.fakes, with_fakes.matches_golden
    );

    let no_fakes = SynthOptions {
        fake_tokens: false,
        ..SynthOptions::default()
    };
    match run_kernel_with(&spec, config(), &no_fakes, &sim) {
        Err(e) => println!("fake tokens OFF:  {e}"),
        Ok(r) => println!(
            "fake tokens OFF:  unexpectedly completed in {} cycles (did the guard ever evaluate false?)",
            r.report.cycles
        ),
    }

    println!(
        "\nWithout fake tokens the arbiter never learns that untaken iterations\n\
         contribute no memory op, so retirement stalls, the depth-4 queue fills,\n\
         and backpressure freezes the whole pipeline — exactly the failure the\n\
         paper's §V-C tag-and-fake mechanism eliminates."
    );
}
