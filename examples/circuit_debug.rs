//! Circuit introspection: export a synthesized kernel as Graphviz DOT and
//! watch its memory-port channels as ASCII waveforms while it runs — the
//! reproduction's stand-in for Dynamatic's DOT viewer plus a ModelSim wave
//! window.
//!
//! ```text
//! cargo run --release --example circuit_debug
//! dot -Tsvg /tmp/prevv_circuit.dot -o circuit.svg   # if graphviz is installed
//! ```

use prevv::dataflow::trace::TraceRecorder;
use prevv::dataflow::{viz, SimConfig, Simulator};
use prevv::kernels::extra;
use prevv::{PrevvConfig, PrevvMemory};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = extra::fig2a(12, (0..12).map(|i| i % 4).collect());
    println!("kernel source:\n{}", prevv::ir::pretty::render(&spec));

    let mut synth = prevv::ir::synthesize(&spec)?;
    let (ctrl, ram, stats) = PrevvMemory::new(
        synth.interface.clone(),
        PrevvConfig::prevv16(),
        synth.bus.clone(),
    )?;

    // Watch the first load port's address and result channels plus the
    // first store port's address channel.
    let mut watch = Vec::new();
    for p in synth.interface.ports.iter().take(3) {
        watch.push(p.addr_in);
        if let Some(out) = p.data_out {
            watch.push(out);
        }
    }
    synth.netlist.add("prevv", ctrl);

    let dot = viz::to_dot(&synth.netlist);
    std::fs::write("/tmp/prevv_circuit.dot", &dot)?;
    println!(
        "wrote /tmp/prevv_circuit.dot ({} nodes, {} channels)\n",
        synth.netlist.node_count(),
        synth.netlist.channel_count()
    );

    let mut sim = Simulator::new(synth.netlist, synth.bus)?.with_config(SimConfig {
        max_cycles: 50_000,
        watchdog: 2_000,
        ..SimConfig::default()
    });
    sim.attach_recorder(TraceRecorder::new(watch));
    let report = sim.run()?;

    println!("simulation: {report}");
    println!("final a[] = {:?}", &ram.borrow().image()[..8]);
    println!("controller stats: {:?}\n", stats.borrow());
    println!("memory-port waveforms (T = transfer, s = stall, . = idle):");
    let rec = sim.take_recorder().expect("attached");
    // Print the first 100 cycles of each watched channel.
    for &ch in rec.channels() {
        let t = rec.trace(ch).expect("watched");
        let wave: String = t.render().chars().take(100).collect();
        println!("{ch:>6}  {wave}");
    }
    Ok(())
}
