//! Quickstart: run the paper's motivating kernel (Fig. 2b — runtime-only
//! memory dependences) on a dataflow circuit with PreVV, and see why
//! disambiguation is needed at all.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use prevv::kernels::extra;
use prevv::{evaluate, run_kernel, Controller, PrevvConfig};

fn main() -> Result<(), prevv::RunError> {
    // The paper's Fig. 2(b): indices depend on opaque runtime functions, so
    // no compiler can prove independence — classic dynamic-HLS territory.
    let spec = extra::fig2b(48, 8);
    println!(
        "kernel: {} ({} iterations)\n",
        spec.name,
        spec.iteration_count()
    );

    // 1. No disambiguation: the circuit pipelines aggressively and reads
    //    stale data.
    let direct = run_kernel(&spec, Controller::Direct)?;
    println!(
        "direct (no disambiguation): {} cycles — matches golden: {}",
        direct.report.cycles, direct.matches_golden
    );

    // 2. The conventional fix: a load-store queue.
    let lsq = evaluate(&spec, Controller::FastLsq { depth: 16 })?;
    println!(
        "LSQ [8]:  {} cycles, {} — matches golden: {}",
        lsq.run.report.cycles,
        lsq.design.total(),
        lsq.run.matches_golden
    );

    // 3. PreVV: out-of-order execution + premature value validation.
    let prevv = evaluate(&spec, Controller::Prevv(PrevvConfig::prevv16()))?;
    let stats = prevv.run.prevv.expect("prevv stats");
    println!(
        "PreVV16:  {} cycles, {} — matches golden: {}",
        prevv.run.report.cycles,
        prevv.design.total(),
        prevv.run.matches_golden
    );
    println!(
        "          {} validations, {} squashes, {} iterations replayed, peak queue {}",
        stats.validations, stats.squashes, stats.replayed_iters, stats.queue_high_water
    );

    let saving = 1.0 - prevv.design.total().luts as f64 / lsq.design.total().luts as f64;
    println!(
        "\nPreVV16 uses {:.1}% fewer LUTs than the LSQ at {:+.1}% execution time.",
        saving * 100.0,
        (prevv.exec_time_us / lsq.exec_time_us - 1.0) * 100.0
    );
    Ok(())
}
