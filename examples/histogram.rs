//! Histogram: the canonical runtime-index hazard. Sweeps the collision rate
//! (bin count) and compares the LSQ against PreVV at two queue depths,
//! showing how the squash rate tracks the hazard rate and what it costs.
//!
//! ```text
//! cargo run --release --example histogram
//! ```

use prevv::kernels::extra;
use prevv::{evaluate, Controller, PrevvConfig};

fn main() -> Result<(), prevv::RunError> {
    const N: i64 = 192;
    println!("histogram of {N} samples — hazard rate controlled by bin count\n");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>9} {:>9}",
        "bins", "LSQ cyc", "PreVV16 cyc", "PreVV64 cyc", "squash16", "squash64"
    );
    for bins in [2, 4, 8, 16, 64, 256] {
        let spec = extra::histogram(N, bins, 1234);
        let lsq = evaluate(&spec, Controller::FastLsq { depth: 16 })?;
        let p16 = evaluate(&spec, Controller::Prevv(PrevvConfig::prevv16()))?;
        let p64 = evaluate(&spec, Controller::Prevv(PrevvConfig::prevv64()))?;
        for e in [&lsq, &p16, &p64] {
            assert!(e.run.matches_golden, "diverged from golden");
        }
        println!(
            "{:>6} {:>10} {:>12} {:>12} {:>9} {:>9}",
            bins,
            lsq.run.report.cycles,
            p16.run.report.cycles,
            p64.run.report.cycles,
            p16.run.report.squashes,
            p64.run.report.squashes,
        );
    }
    println!(
        "\nFewer bins ⇒ more same-address reuse ⇒ more premature loads race their\n\
         producer stores. The dependence predictor converts repeat offenders into\n\
         short holds, so the squash count stays bounded instead of growing with N."
    );
    Ok(())
}
